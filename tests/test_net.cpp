/// Unit tests for the net/ subsystem: interconnect topologies, multi-hop
/// routing, entanglement-swap composition, part placement, and the
/// engine-level equivalence of an explicit all-to-all topology with the
/// legacy homogeneous interconnect.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "gen/benchmarks.hpp"
#include "net/mapping.hpp"
#include "net/router.hpp"
#include "net/swap.hpp"
#include "net/topology.hpp"
#include "noise/werner.hpp"
#include "runtime/arch_config.hpp"
#include "runtime/engine.hpp"
#include "runtime/experiment.hpp"

namespace dqcsim::net {
namespace {

using runtime::ArchConfig;
using runtime::DesignKind;
using runtime::RunResult;

// ---------------------------------------------------------------- topology ----

TEST(Topology, BuildersProduceExpectedShapes) {
  const Topology chain = Topology::chain(5);
  EXPECT_EQ(chain.num_nodes(), 5);
  EXPECT_EQ(chain.num_edges(), 4u);
  EXPECT_EQ(chain.degree(0), 1);
  EXPECT_EQ(chain.degree(2), 2);
  EXPECT_TRUE(chain.has_edge(1, 2));
  EXPECT_FALSE(chain.has_edge(0, 4));
  EXPECT_EQ(chain.name(), "chain");

  const Topology ring = Topology::ring(6);
  EXPECT_EQ(ring.num_edges(), 6u);
  for (int v = 0; v < 6; ++v) EXPECT_EQ(ring.degree(v), 2);
  EXPECT_TRUE(ring.has_edge(0, 5));

  const Topology grid = Topology::grid(2, 3);
  EXPECT_EQ(grid.num_nodes(), 6);
  EXPECT_EQ(grid.num_edges(), 7u);  // 2 rows x 2 + 3 columns x 1
  EXPECT_TRUE(grid.has_edge(0, 1));   // same row
  EXPECT_TRUE(grid.has_edge(1, 4));   // same column
  EXPECT_FALSE(grid.has_edge(0, 4));  // diagonal

  const Topology star = Topology::star(5);
  EXPECT_EQ(star.num_edges(), 4u);
  EXPECT_EQ(star.degree(0), 4);
  EXPECT_EQ(star.degree(3), 1);
  EXPECT_EQ(star.max_degree(), 4);

  const Topology full = Topology::all_to_all(4);
  EXPECT_EQ(full.num_edges(), 6u);
  EXPECT_EQ(full.kind(), TopologyKind::AllToAll);
  EXPECT_EQ(full.name(), "all_to_all");
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) EXPECT_TRUE(full.has_edge(a, b));
  }
}

TEST(Topology, NeighborsAreSortedAndSymmetric) {
  const Topology ring = Topology::ring(5);
  EXPECT_EQ(ring.neighbors(0), (std::vector<int>{1, 4}));
  EXPECT_EQ(ring.neighbors(3), (std::vector<int>{2, 4}));
  EXPECT_EQ(ring.edge_index(4, 0), ring.edge_index(0, 4));
}

TEST(Topology, EveryBuilderValidatesAndConnects) {
  for (const Topology& t :
       {Topology::all_to_all(6), Topology::chain(6), Topology::ring(6),
        Topology::grid(2, 3), Topology::star(6)}) {
    EXPECT_NO_THROW(t.validate());
    EXPECT_TRUE(t.is_connected());
  }
}

TEST(Topology, CustomRejectsMalformedGraphs) {
  // Disconnected.
  EXPECT_THROW(Topology::custom(4, {{0, 1}, {2, 3}}), ConfigError);
  // Self loop.
  EXPECT_THROW(Topology::custom(3, {{0, 1}, {1, 2}, {2, 2}}), ConfigError);
  // Duplicate (also reversed).
  EXPECT_THROW(Topology::custom(3, {{0, 1}, {1, 2}, {1, 0}}), ConfigError);
  // Endpoint out of range.
  EXPECT_THROW(Topology::custom(3, {{0, 1}, {1, 3}}), ConfigError);
  // A valid custom graph passes.
  EXPECT_NO_THROW(Topology::custom(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}));
}

TEST(Topology, EdgeOverridesValidateAndStick) {
  Topology t = Topology::chain(3);
  EdgeOverrides o;
  o.p_succ = 0.7;
  o.f0 = 0.95;
  t.set_edge_overrides(1, 0, o);  // reversed endpoints normalize
  const std::size_t e = t.edge_index(0, 1);
  ASSERT_NE(e, Topology::npos);
  EXPECT_TRUE(t.edge(e).overrides.any());
  EXPECT_DOUBLE_EQ(*t.edge(e).overrides.p_succ, 0.7);
  EXPECT_FALSE(t.edge(t.edge_index(1, 2)).overrides.any());

  EXPECT_THROW(t.set_edge_overrides(0, 2, o), ConfigError);  // no edge
  EdgeOverrides bad;
  bad.p_succ = 0.0;
  EXPECT_THROW(t.set_edge_overrides(0, 1, bad), ConfigError);
  bad = {};
  bad.f0 = 0.1;
  EXPECT_THROW(t.set_edge_overrides(0, 1, bad), ConfigError);
  bad = {};
  bad.cycle_time = -1.0;
  EXPECT_THROW(t.set_edge_overrides(0, 1, bad), ConfigError);
}

// ------------------------------------------------------------------ router ----

TEST(Router, ChainHopCountsAreExact) {
  const Router r(Topology::chain(6));
  for (int a = 0; a < 6; ++a) {
    for (int b = 0; b < 6; ++b) {
      EXPECT_EQ(r.hop_distance(a, b), std::abs(a - b));
    }
  }
  const Route& route = r.route(1, 4);
  EXPECT_EQ(route.nodes, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(route.hops(), 3);
  EXPECT_DOUBLE_EQ(route.cost, 3.0);
}

TEST(Router, RingTakesTheShorterArc) {
  const Router r(Topology::ring(6));
  EXPECT_EQ(r.hop_distance(0, 1), 1);
  EXPECT_EQ(r.hop_distance(0, 2), 2);
  EXPECT_EQ(r.hop_distance(0, 3), 3);
  EXPECT_EQ(r.hop_distance(0, 4), 2);  // around the back
  EXPECT_EQ(r.hop_distance(0, 5), 1);
  EXPECT_EQ(r.route(0, 4).nodes, (std::vector<int>{0, 5, 4}));
}

TEST(Router, GridDistancesAreManhattan) {
  const Router r(Topology::grid(3, 3));
  // Node id = row * 3 + col.
  EXPECT_EQ(r.hop_distance(0, 8), 4);  // (0,0) -> (2,2)
  EXPECT_EQ(r.hop_distance(3, 5), 2);  // (1,0) -> (1,2)
  EXPECT_EQ(r.hop_distance(1, 7), 2);  // (0,1) -> (2,1)
}

TEST(Router, StarRoutesThroughTheHub) {
  const Router r(Topology::star(5));
  EXPECT_EQ(r.hop_distance(0, 3), 1);
  EXPECT_EQ(r.hop_distance(2, 4), 2);
  EXPECT_EQ(r.route(2, 4).nodes, (std::vector<int>{2, 0, 4}));
}

TEST(Router, CostAwareRoutingAvoidsExpensiveEdges) {
  // Triangle with a costly direct edge 0-2: the two-hop detour wins.
  const Topology t = Topology::custom(3, {{0, 1}, {1, 2}, {0, 2}});
  const Router hops(t);
  EXPECT_EQ(hops.hop_distance(0, 2), 1);
  const Router costed(t, {1.0, 1.0, 10.0});
  EXPECT_EQ(costed.hop_distance(0, 2), 2);
  EXPECT_EQ(costed.route(0, 2).nodes, (std::vector<int>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(costed.route(0, 2).cost, 2.0);
}

TEST(Router, TieBreaksAreDeterministic) {
  // ring(4): two equal-length arcs between opposite corners; the router
  // must pick the same one every time (smallest intermediate node id).
  const Router a(Topology::ring(4));
  const Router b(Topology::ring(4));
  EXPECT_EQ(a.route(0, 2).nodes, b.route(0, 2).nodes);
  EXPECT_EQ(a.route(0, 2).nodes, (std::vector<int>{0, 1, 2}));
}

TEST(Router, ReverseRoutesAreExactMirrorsEvenOnCostTies) {
  // Two routes from 0 to 4 tie at cost 4: 0-1-4 (3 + 1) and 0-2-3-4
  // (1 + 1 + 2). Whatever the tie-break picks, the reverse direction must
  // be the same path reversed — hop_distance(a, b) == hop_distance(b, a).
  const Topology t =
      Topology::custom(5, {{0, 1}, {1, 4}, {0, 2}, {2, 3}, {3, 4}});
  const Router r(t, {3.0, 1.0, 1.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(r.route(0, 4).cost, 4.0);
  EXPECT_EQ(r.hop_distance(0, 4), r.hop_distance(4, 0));
  std::vector<int> back = r.route(4, 0).nodes;
  std::reverse(back.begin(), back.end());
  EXPECT_EQ(r.route(0, 4).nodes, back);
  EXPECT_EQ(r.route(0, 4).edges,
            std::vector<std::size_t>(r.route(4, 0).edges.rbegin(),
                                     r.route(4, 0).edges.rend()));
}

TEST(Router, RejectsMismatchedCostsAndUnreachableQueries) {
  const Topology t = Topology::chain(3);
  EXPECT_THROW(Router(t, {1.0}), PreconditionError);
  EXPECT_THROW(Router(t, {1.0, 0.0}), PreconditionError);
  const Router r(t);
  EXPECT_THROW(r.route(0, 3), PreconditionError);
  EXPECT_THROW(r.route(-1, 0), PreconditionError);
}

TEST(Router, SelfPairContractIsConsistent) {
  // route(a, a) used to hard-assert while hop_distance(a, a) returned 0;
  // both now agree: the self-route exists, is empty, and costs nothing.
  const Router r(Topology::chain(3));
  for (int a = 0; a < 3; ++a) {
    EXPECT_EQ(r.hop_distance(a, a), 0);
    EXPECT_EQ(r.route(a, a).hops(), 0);
    EXPECT_DOUBLE_EQ(r.route(a, a).cost, 0.0);
    EXPECT_TRUE(r.has_route(a, a));
  }
}

TEST(Router, OneNodeTopologyIsRejectedBeforeRouting) {
  // The degenerate 1-node system has no edges; Topology::validate refuses
  // it, so a Router can never be built over one (the self-pair contract
  // above is the only place a == b is ever answered).
  EXPECT_THROW(Topology::custom(1, {}).validate(), ConfigError);
  EXPECT_THROW(Router(Topology::custom(1, {})), ConfigError);
}

TEST(Router, MaskedRouterRoutesOverSurvivingSubgraph) {
  // ring(4) with edge {0, 1} masked out: 0 reaches 1 the long way round.
  const Topology t = Topology::ring(4);
  const std::vector<double> costs(t.num_edges(), 1.0);
  std::vector<char> up(t.num_edges(), 1);
  up[t.edge_index(0, 1)] = 0;
  const Router masked(t, costs, up);
  EXPECT_TRUE(masked.has_route(0, 1));
  EXPECT_EQ(masked.route(0, 1).nodes, (std::vector<int>{0, 3, 2, 1}));
  EXPECT_EQ(masked.hop_distance(0, 1), 3);
}

TEST(Router, MaskedRouterToleratesDisconnection) {
  // chain(3) without its middle edge: node 2 is cut off, which a masked
  // router must report via has_route instead of failing to build.
  const Topology t = Topology::chain(3);
  const std::vector<double> costs(t.num_edges(), 1.0);
  std::vector<char> up(t.num_edges(), 1);
  up[t.edge_index(1, 2)] = 0;
  const Router masked(t, costs, up);
  EXPECT_TRUE(masked.has_route(0, 1));
  EXPECT_FALSE(masked.has_route(0, 2));
  EXPECT_FALSE(masked.has_route(1, 2));
  EXPECT_TRUE(masked.has_route(2, 2));
  EXPECT_EQ(masked.route(0, 2).hops(), 0);  // empty, not a path
  // A disabled edge may carry a nonsensical cost; only enabled ones are
  // checked.
  std::vector<double> bad_costs(t.num_edges(), 1.0);
  bad_costs[t.edge_index(1, 2)] = 0.0;
  EXPECT_NO_THROW(Router(t, bad_costs, up));
  std::vector<char> all_up(t.num_edges(), 1);
  EXPECT_THROW(Router(t, bad_costs, all_up), PreconditionError);
}

// ----------------------------------------------------------- swap model ----

TEST(Swap, SingleHopPassesThroughUnchanged) {
  const double f[] = {0.93};
  EXPECT_DOUBLE_EQ(swap_composed_fidelity(f, 1, 0.5), 0.93);
}

TEST(Swap, TwoHopIdealBsmMatchesHandComputedWerner) {
  // F = 0.95 per hop: w = (4*0.95 - 1) / 3 = 2.8/3; the swapped weight is
  // w^2 = 7.84/9, so F_end = (3 * 7.84/9 + 1) / 4.
  const double f[] = {0.95, 0.95};
  const double expected = (3.0 * (7.84 / 9.0) + 1.0) / 4.0;
  EXPECT_NEAR(swap_composed_fidelity(f, 2, 1.0), expected, 1e-12);
  EXPECT_NEAR(noise::werner_swapped_fidelity(0.95, 0.95), expected, 1e-12);
}

TEST(Swap, NoisyBsmMultipliesOneWeightPerSwap) {
  const double f[] = {0.95, 0.97, 0.99};
  const double w1 = noise::werner_weight_from_fidelity(0.95);
  const double w2 = noise::werner_weight_from_fidelity(0.97);
  const double w3 = noise::werner_weight_from_fidelity(0.99);
  const double wb = noise::werner_weight_from_fidelity(0.9);
  const double expected =
      noise::werner_fidelity_from_weight(w1 * w2 * w3 * wb * wb);
  EXPECT_NEAR(swap_composed_fidelity(f, 3, 0.9), expected, 1e-12);
  // A fully depolarizing BSM kills the pair: F = 0.25.
  EXPECT_DOUBLE_EQ(swap_composed_fidelity(f, 3, 0.25), 0.25);
}

TEST(Swap, ComposeRouteBottlenecksEveryResource) {
  const Topology t = Topology::chain(3);
  const Router r(t);
  std::vector<ent::LinkParams> edge_params(2);
  edge_params[0].num_comm_pairs = 4;
  edge_params[0].buffer_capacity = 6;
  edge_params[0].p_succ = 0.5;
  edge_params[0].cycle_time = 10.0;
  edge_params[0].f0 = 0.98;
  edge_params[1].num_comm_pairs = 2;
  edge_params[1].buffer_capacity = 3;
  edge_params[1].p_succ = 0.25;
  edge_params[1].cycle_time = 12.0;
  edge_params[1].f0 = 0.95;
  SwapParams swap;
  swap.bsm_fidelity = 0.99;
  swap.latency = 6.0;

  const RoutedLink link = compose_route(r.route(0, 2), edge_params, swap);
  EXPECT_EQ(link.hops, 2);
  EXPECT_EQ(link.params.num_comm_pairs, 2);
  EXPECT_EQ(link.params.buffer_capacity, 3);
  EXPECT_DOUBLE_EQ(link.params.p_succ, 0.125);
  EXPECT_DOUBLE_EQ(link.params.cycle_time, 12.0);
  const double f[] = {0.98, 0.95};
  EXPECT_DOUBLE_EQ(link.params.f0, swap_composed_fidelity(f, 2, 0.99));
  EXPECT_DOUBLE_EQ(link.extra_latency, 6.0);

  // A direct edge passes through untouched.
  const RoutedLink direct = compose_route(r.route(0, 1), edge_params, swap);
  EXPECT_EQ(direct.hops, 1);
  EXPECT_TRUE(direct.params == edge_params[0]);
  EXPECT_DOUBLE_EQ(direct.extra_latency, 0.0);
}

// ----------------------------------------------------------------- mapping ----

TEST(Mapping, FindsTheBruteForceOptimumOnAChain) {
  // Parts 0 and 3 talk the most; on a 4-chain they must end up adjacent.
  const int k = 4;
  TrafficMatrix traffic(16, 0);
  const auto set = [&](int p, int q, std::int64_t w) {
    traffic[static_cast<std::size_t>(p) * 4 + static_cast<std::size_t>(q)] =
        w;
    traffic[static_cast<std::size_t>(q) * 4 + static_cast<std::size_t>(p)] =
        w;
  };
  set(0, 3, 10);
  set(0, 1, 2);
  set(1, 2, 1);
  const Router router(Topology::chain(4));

  const std::vector<int> mapping = optimize_node_mapping(traffic, k, router);
  const std::int64_t found = mapped_cut_weight(traffic, k, mapping, router);

  std::vector<int> perm(4);
  std::iota(perm.begin(), perm.end(), 0);
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  do {
    best = std::min(best, mapped_cut_weight(traffic, k, perm, router));
  } while (std::next_permutation(perm.begin(), perm.end()));
  EXPECT_EQ(found, best);
  // Parts 0 and 3 adjacent under the found mapping.
  EXPECT_EQ(std::abs(mapping[0] - mapping[3]), 1);
}

TEST(Mapping, AllToAllKeepsTheIdentity) {
  TrafficMatrix traffic(9, 0);
  traffic[0 * 3 + 1] = traffic[1 * 3 + 0] = 5;
  traffic[1 * 3 + 2] = traffic[2 * 3 + 1] = 7;
  const Router router(Topology::all_to_all(3));
  EXPECT_EQ(optimize_node_mapping(traffic, 3, router),
            (std::vector<int>{0, 1, 2}));
}

// -------------------------------------------------- ArchConfig integration ----

TEST(NetArchConfig, PerPairParamsWithoutTopologyMatchLegacy) {
  ArchConfig config;
  config.num_nodes = 4;
  const auto legacy = config.link_params(DesignKind::AsyncBuf);
  const auto per_pair = config.link_params(DesignKind::AsyncBuf, 1, 3);
  EXPECT_TRUE(legacy == per_pair);
}

TEST(NetArchConfig, PerPairParamsSplitByDegreeAndApplyOverrides) {
  ArchConfig config;
  config.num_nodes = 4;
  config.comm_per_node = 8;
  config.buffer_per_node = 8;
  Topology star = Topology::star(4);
  EdgeOverrides o;
  o.p_succ = 0.7;
  o.cycle_time = 20.0;
  star.set_edge_overrides(0, 1, o);
  config.set_topology(star);

  // Hub degree 3 bounds the split even though the leaf has degree 1.
  const auto link = config.link_params(DesignKind::SyncBuf, 0, 1);
  EXPECT_EQ(link.num_comm_pairs, 2);   // 8 / 3
  EXPECT_EQ(link.buffer_capacity, 2);  // 8 / 3
  EXPECT_DOUBLE_EQ(link.p_succ, 0.7);
  EXPECT_DOUBLE_EQ(link.cycle_time, 20.0);
  const auto plain = config.link_params(DesignKind::SyncBuf, 0, 2);
  EXPECT_DOUBLE_EQ(plain.p_succ, config.p_succ);

  // Leaf-to-leaf pairs have no physical edge: derived by routing only.
  EXPECT_THROW(config.link_params(DesignKind::SyncBuf, 1, 2), ConfigError);
  // Degree above the comm budget is rejected.
  config.comm_per_node = 2;
  EXPECT_THROW(config.link_params(DesignKind::SyncBuf, 0, 1), ConfigError);
}

TEST(NetArchConfig, ValidateCrossChecksTopology) {
  ArchConfig config;
  config.num_nodes = 4;
  config.set_topology(Topology::ring(5));
  EXPECT_THROW(config.validate(), ConfigError);
  config.set_topology(Topology::ring(4));
  EXPECT_NO_THROW(config.validate());
}

TEST(NetArchConfig, SwapParamsDeriveFromTableII) {
  const ArchConfig config;
  const SwapParams swap = config.swap_params();
  EXPECT_DOUBLE_EQ(swap.bsm_fidelity, 0.999 * 0.998 * 0.998);
  EXPECT_DOUBLE_EQ(swap.latency, 6.0);  // local CNOT + measurement
}

// --------------------------------------------------------- engine behavior ----

/// 8 qubits over 4 nodes with traffic on four node pairs plus local work.
Circuit four_node_circuit() {
  Circuit qc(8);
  for (int rep = 0; rep < 3; ++rep) {
    qc.rzz(1, 2, 0.1);  // nodes 0-1
    qc.rzz(3, 4, 0.1);  // nodes 1-2
    qc.rzz(5, 6, 0.1);  // nodes 2-3
    qc.rzz(7, 0, 0.1);  // nodes 3-0
    qc.rzz(0, 1, 0.1);  // local on node 0
    qc.h(2);
  }
  return qc;
}

std::vector<int> four_node_assignment() {
  return {0, 0, 1, 1, 2, 2, 3, 3};
}

TEST(NetEngine, ExplicitAllToAllIsBitIdenticalToLegacyForEveryDesign) {
  const Circuit qc = four_node_circuit();
  const std::vector<int> nodes = four_node_assignment();
  for (const DesignKind design : runtime::distributed_designs()) {
    ArchConfig legacy;
    legacy.num_nodes = 4;
    ArchConfig topo = legacy;
    topo.set_topology(Topology::all_to_all(4));

    const auto a = runtime::run_design(qc, nodes, legacy, design, 6);
    const auto b = runtime::run_design(qc, nodes, topo, design, 6);
    EXPECT_DOUBLE_EQ(a.depth.mean(), b.depth.mean());
    EXPECT_DOUBLE_EQ(a.depth.stddev(), b.depth.stddev());
    EXPECT_DOUBLE_EQ(a.fidelity.mean(), b.fidelity.mean());
    EXPECT_DOUBLE_EQ(a.epr_wasted.mean(), b.epr_wasted.mean());
    EXPECT_DOUBLE_EQ(a.epr_expired.mean(), b.epr_expired.mean());
    EXPECT_DOUBLE_EQ(a.avg_pair_age.mean(), b.avg_pair_age.mean());
    EXPECT_DOUBLE_EQ(a.avg_remote_wait.mean(), b.avg_remote_wait.mean());
    EXPECT_DOUBLE_EQ(b.entanglement_swaps.mean(), 0.0);
    EXPECT_DOUBLE_EQ(b.avg_route_hops.mean(), 1.0);
  }
}

RunResult run_once(const Circuit& qc, const std::vector<int>& nodes,
                   const ArchConfig& config, DesignKind design,
                   std::uint64_t seed = 1) {
  runtime::ExecutionEngine engine(qc, nodes, config, design, seed);
  return engine.run();
}

TEST(NetEngine, ChainMultiHopPaysSwapLatency) {
  // 3-node chain, single remote gate between the ends: both hops herald
  // deterministically at t=10 and deposit at 11; one swap (local CNOT +
  // measurement = 6) delays the gate, which then runs for 1 unit.
  Circuit qc(3);
  qc.cx(0, 2);
  ArchConfig config;
  config.num_nodes = 3;
  config.p_succ = 1.0;
  config.set_topology(Topology::chain(3));
  const RunResult r =
      run_once(qc, {0, 1, 2}, config, DesignKind::SyncBuf);
  EXPECT_NEAR(r.depth, 18.0, 1e-9);  // 11 deposit + 6 swap + 1 gate
  EXPECT_EQ(r.entanglement_swaps, 1u);
  EXPECT_NEAR(r.avg_route_hops, 2.0, 1e-9);

  // The adjacent pair on the same topology pays no swap.
  Circuit adj(3);
  adj.cx(0, 1);
  const RunResult direct =
      run_once(adj, {0, 1, 2}, config, DesignKind::SyncBuf);
  EXPECT_NEAR(direct.depth, 12.0, 1e-9);
  EXPECT_EQ(direct.entanglement_swaps, 0u);
  EXPECT_GT(direct.fidelity_remote, r.fidelity_remote);
}

TEST(NetEngine, OnDemandMultiHopAlsoPaysTheSwapChain) {
  Circuit qc(3);
  qc.cx(0, 2);
  ArchConfig config;
  config.num_nodes = 3;
  config.p_succ = 1.0;
  config.set_topology(Topology::chain(3));
  // Bufferless original design: herald at t=10, swap chain 6, gate 1.
  const RunResult r =
      run_once(qc, {0, 1, 2}, config, DesignKind::Original);
  EXPECT_NEAR(r.depth, 17.0, 1e-9);
  EXPECT_EQ(r.entanglement_swaps, 1u);
}

TEST(NetEngine, StarLeavesRouteThroughTheHub) {
  Circuit qc(4);
  qc.cx(1, 2);  // leaves of the star
  ArchConfig config;
  config.num_nodes = 4;
  config.p_succ = 1.0;
  config.set_topology(Topology::star(4));
  const RunResult r =
      run_once(qc, {0, 1, 2, 3}, config, DesignKind::SyncBuf);
  EXPECT_EQ(r.entanglement_swaps, 1u);
  EXPECT_NEAR(r.avg_route_hops, 2.0, 1e-9);
}

TEST(NetEngine, EdgeOverridesShapeTheSchedule) {
  // Slowing the only edge's attempt cycle delays the remote gate exactly.
  Circuit qc(2);
  qc.cx(0, 1);
  ArchConfig config;
  config.p_succ = 1.0;
  Topology t = Topology::chain(2);
  EdgeOverrides o;
  o.cycle_time = 20.0;
  t.set_edge_overrides(0, 1, o);
  config.set_topology(t);
  const RunResult r = run_once(qc, {0, 1}, config, DesignKind::SyncBuf);
  EXPECT_NEAR(r.depth, 22.0, 1e-9);  // 20 herald + 1 swap-in + 1 gate
}

TEST(NetEngine, DeterministicAcrossRunContextReuse) {
  const Circuit qc = four_node_circuit();
  const std::vector<int> nodes = four_node_assignment();
  ArchConfig config;
  config.num_nodes = 4;
  config.set_topology(Topology::ring(4));
  runtime::RunContext ctx;
  const RunResult cold =
      ctx.execute(qc, nodes, config, DesignKind::AsyncBuf, 42);
  ctx.execute(qc, nodes, config, DesignKind::AsyncBuf, 7);
  const RunResult warm =
      ctx.execute(qc, nodes, config, DesignKind::AsyncBuf, 42);
  EXPECT_DOUBLE_EQ(cold.depth, warm.depth);
  EXPECT_DOUBLE_EQ(cold.fidelity, warm.fidelity);
  EXPECT_EQ(cold.epr_attempts, warm.epr_attempts);
  EXPECT_EQ(cold.entanglement_swaps, warm.entanglement_swaps);
}

TEST(NetEngine, MismatchedTopologyIsRejected) {
  Circuit qc(2);
  qc.cx(0, 1);
  ArchConfig config;  // num_nodes = 2
  config.set_topology(Topology::ring(4));
  EXPECT_THROW(
      runtime::ExecutionEngine(qc, {0, 1}, config, DesignKind::SyncBuf, 1),
      ConfigError);
}

TEST(NetEngine, TopologyAwarePartitionRunsEndToEnd) {
  const Circuit qc = gen::make_benchmark(gen::BenchmarkId::QAOA_R8_32);
  const Topology topo = Topology::ring(8);
  const auto part = runtime::partition_circuit(qc, topo);
  ASSERT_EQ(part.k, 8);
  EXPECT_GT(part.cut, 0);

  ArchConfig config;
  config.num_nodes = 8;
  config.comm_per_node = 16;
  config.buffer_per_node = 16;
  config.set_topology(topo);
  const auto agg = runtime::run_design(qc, part.assignment, config,
                                       DesignKind::AsyncBuf, 3);
  EXPECT_EQ(agg.depth.count(), 3u);
  EXPECT_GT(agg.depth.mean(), 0.0);
  EXPECT_GT(agg.fidelity.mean(), 0.0);
  EXPECT_LE(agg.fidelity.max(), 1.0);
  EXPECT_GE(agg.avg_route_hops.mean(), 1.0);
}

TEST(NetEngine, TopologyAwarePartitionBeatsNaivePlacementOnAChain) {
  const Circuit qc = gen::make_benchmark(gen::BenchmarkId::QAOA_R8_32);
  const Topology topo = Topology::chain(8);
  const auto plain = runtime::partition_circuit(qc, 8);
  const auto routed = runtime::partition_circuit(qc, topo);

  // Same parts, possibly relabeled: the distance-scaled cut of the
  // topology-aware placement can only be at least as good.
  const Router router(topo);
  net::TrafficMatrix traffic(64, 0);
  for (std::size_t i = 0; i < qc.num_gates(); ++i) {
    const Gate& g = qc.gate(i);
    if (g.arity() != 2) continue;
    const auto p = static_cast<std::size_t>(
        plain.assignment[static_cast<std::size_t>(g.q0())]);
    const auto q = static_cast<std::size_t>(
        plain.assignment[static_cast<std::size_t>(g.q1())]);
    if (p == q) continue;
    ++traffic[p * 8 + q];
    ++traffic[q * 8 + p];
  }
  std::vector<int> identity(8);
  std::iota(identity.begin(), identity.end(), 0);
  const std::int64_t naive =
      mapped_cut_weight(traffic, 8, identity, router);
  EXPECT_LE(routed.cut, naive);
}

}  // namespace
}  // namespace dqcsim::net
