/// Unit and end-to-end tests for the observability layer (src/obs/):
/// deterministic histograms, the metrics registry and its order-independent
/// merge, the phase profile, the trace ring/exporter, and the engine-level
/// contracts — attaching an observer never changes results, registry
/// snapshots and the traced trial's JSON are bit-identical at any thread
/// count, and a null observer is bit-identical to no observer at all.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "gen/benchmarks.hpp"
#include "net/topology.hpp"
#include "obs/histogram.hpp"
#include "obs/observe.hpp"
#include "obs/registry.hpp"
#include "obs/scope.hpp"
#include "obs/trace.hpp"
#include "runtime/arch_config.hpp"
#include "runtime/design.hpp"
#include "runtime/experiment.hpp"
#include "scenario/scenario.hpp"

namespace dqcsim::obs {
namespace {

using runtime::AggregateResult;
using runtime::ArchConfig;
using runtime::DesignKind;

// ----------------------------------------------------------------- Hist ----

TEST(Hist, UnconfiguredAddIsNoop) {
  Hist h;
  EXPECT_FALSE(h.configured());
  h.add(3.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(Hist, FixedBinQuantiles) {
  Hist h = Hist::fixed(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(static_cast<double>(i) + 0.5);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.5);  // exact extrema at the ends
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 9.5);
}

TEST(Hist, LogarithmicCoversWideRanges) {
  Hist h = Hist::logarithmic();
  const std::vector<double> xs = {0.001, 0.1, 1.0, 7.0, 64.0, 1e6};
  for (double x : xs) h.add(x);
  EXPECT_EQ(h.count(), xs.size());
  EXPECT_DOUBLE_EQ(h.min(), 0.001);
  EXPECT_DOUBLE_EQ(h.max(), 1e6);
  for (double q : {0.1, 0.5, 0.9}) {
    EXPECT_GE(h.quantile(q), h.min()) << "q=" << q;
    EXPECT_LE(h.quantile(q), h.max()) << "q=" << q;
  }
}

TEST(Hist, MergeIsOrderIndependent) {
  // Integer bucket counts + exact extrema: merging in any order yields the
  // same quantiles bit-for-bit. This is the registry's determinism basis.
  Hist a = Hist::logarithmic(), b = Hist::logarithmic();
  Hist ab = Hist::logarithmic(), ba = Hist::logarithmic();
  for (int i = 1; i <= 50; ++i) a.add(static_cast<double>(i) * 0.37);
  for (int i = 1; i <= 70; ++i) b.add(static_cast<double>(i) * 1.93);
  ab.merge(a);
  ab.merge(b);
  ba.merge(b);
  ba.merge(a);
  EXPECT_EQ(ab.count(), ba.count());
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(ab.quantile(q), ba.quantile(q)) << "q=" << q;
  }
}

TEST(Hist, ResetValuesKeepsConfiguration) {
  Hist h = Hist::fixed(0.0, 4.0, 4);
  h.add(1.0);
  h.reset_values();
  EXPECT_TRUE(h.configured());
  EXPECT_EQ(h.count(), 0u);
  h.add(3.5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.5);
}

// ------------------------------------------------------------- Registry ----

TEST(Registry, RegistrationIsIdempotent) {
  Registry r;
  const auto c1 = r.counter("widgets");
  const auto c2 = r.counter("widgets");
  EXPECT_EQ(c1, c2);
  r.add(c1);
  r.add(c2, 4);
  EXPECT_EQ(r.counter_value("widgets"), 5u);
  EXPECT_EQ(r.counter_value("absent"), 0u);
}

TEST(Registry, GaugeKeepsMaximum) {
  Registry r;
  const auto g = r.gauge("watermark");
  EXPECT_DOUBLE_EQ(r.gauge_value("watermark"), 0.0);  // unseen reports 0
  r.gauge_max(g, -2.0);
  EXPECT_DOUBLE_EQ(r.gauge_value("watermark"), -2.0);  // first value wins...
  r.gauge_max(g, 7.5);
  r.gauge_max(g, 3.0);
  EXPECT_DOUBLE_EQ(r.gauge_value("watermark"), 7.5);  // ...then max
}

TEST(Registry, MergeIsOrderIndependentDownToTheSnapshot) {
  const auto fill = [](Registry& r, std::uint64_t n, double scale) {
    const auto c = r.counter("events");
    const auto g = r.gauge("peak");
    const auto h = r.log_histogram("latency");
    for (std::uint64_t i = 1; i <= n; ++i) {
      r.add(c);
      r.gauge_max(g, static_cast<double>(i) * scale);
      r.observe(h, static_cast<double>(i) * scale);
    }
  };
  Registry a, b, c;
  fill(a, 11, 0.5);
  fill(b, 23, 2.25);
  fill(c, 5, 40.0);

  Registry left, right;
  left.merge(a);
  left.merge(b);
  left.merge(c);
  right.merge(c);
  right.merge(a);
  right.merge(b);
  // The canonical JSON snapshot (sorted sections) must match bit-for-bit.
  EXPECT_EQ(left.to_json().dump(0), right.to_json().dump(0));
  EXPECT_EQ(left.counter_value("events"), 39u);
}

TEST(Registry, ResetValuesKeepsHandlesAndNames) {
  Registry r;
  const auto c = r.counter("events");
  const auto h = r.fixed_histogram("hops", 0.0, 8.0, 8);
  r.add(c, 3);
  r.observe(h, 2.0);
  r.reset_values();
  EXPECT_EQ(r.counter_value("events"), 0u);
  ASSERT_NE(r.histogram("hops"), nullptr);
  EXPECT_EQ(r.histogram("hops")->count(), 0u);
  r.add(c);  // handles stay valid after the reset
  EXPECT_EQ(r.counter_value("events"), 1u);
}

// -------------------------------------------------------------- Profile ----

TEST(Profile, RecordMergeReset) {
  Profile p, q;
  p.record(Phase::Drive, 100);
  p.record(Phase::Drive, 50);
  q.record(Phase::Drive, 7);
  q.record(Phase::Setup, 1);
  p.merge(q);
  EXPECT_EQ(p.calls(Phase::Drive), 3u);
  EXPECT_EQ(p.total_ns(Phase::Drive), 157u);
  EXPECT_EQ(p.calls(Phase::Setup), 1u);
  const std::string json = p.to_json().dump(0);
  EXPECT_NE(json.find("\"obs_profile\""), std::string::npos);
  EXPECT_NE(json.find("phase/Drive"), std::string::npos);
  p.reset();
  EXPECT_EQ(p.calls(Phase::Drive), 0u);
}

TEST(Profile, ScopeTimerNullProfileIsInert) {
  // The observer-off contract: OBS_SCOPE on a null profile must not crash
  // or record anything.
  { OBS_SCOPE(static_cast<Profile*>(nullptr), Phase::Drive); }
  Profile p;
  { OBS_SCOPE(&p, Phase::Finalize); }
  EXPECT_EQ(p.calls(Phase::Finalize), 1u);
}

// ---------------------------------------------------------------- Trace ----

TEST(TraceBuffer, RingEvictsOldestAndCountsDrops) {
  TraceBuffer buf;
  buf.reset(4);
  for (int i = 0; i < 6; ++i) {
    buf.instant(Ev::Deposit, 1, static_cast<double>(i));
  }
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.dropped(), 2u);
  const auto evs = buf.events();
  ASSERT_EQ(evs.size(), 4u);
  // Oldest two (t = 0, 1) were evicted; survivors come back oldest-first.
  EXPECT_DOUBLE_EQ(evs.front().t0, 2.0);
  EXPECT_DOUBLE_EQ(evs.back().t0, 5.0);
}

TEST(TraceSink, ExportsWellFormedChromeTraceJson) {
  TraceBuffer buf;
  buf.reset(16);
  buf.span(Ev::GenOk, 1, 0.0, 2.0);
  buf.instant(Ev::Reroute, 1, 1.0);
  buf.span(Ev::Trial, 0, 0.0, 5.0);
  TraceSink sink;
  sink.set_track_name(0, "engine");
  sink.set_track_name(1, "link 0-1");
  const std::string json = sink.to_json(buf, 1.0).dump(0);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"e\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"link 0-1\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\": 0"), std::string::npos);
}

// ------------------------------------------------- engine-level contracts ----

/// 8 qubits over 4 nodes with remote traffic on four node pairs (the same
/// shape the scenario determinism tests use).
Circuit four_node_circuit() {
  Circuit qc(8);
  for (int rep = 0; rep < 3; ++rep) {
    qc.rzz(1, 2, 0.1);
    qc.rzz(3, 4, 0.1);
    qc.rzz(5, 6, 0.1);
    qc.rzz(7, 0, 0.1);
    qc.rzz(0, 1, 0.1);
    qc.h(2);
  }
  return qc;
}

std::vector<int> four_node_assignment() { return {0, 0, 1, 1, 2, 2, 3, 3}; }

constexpr int kRuns = 8;
constexpr std::uint64_t kSeed = 1000;

ArchConfig base_config(bool faults) {
  ArchConfig config;
  config.num_nodes = 4;
  config.set_topology(net::Topology::ring(4));
  if (faults) {
    scenario::Scenario scn;
    scn.link_outages.push_back({1, 2, 5.0, 80.0});
    scn.random_failures.mtbf = 400.0;
    scn.random_failures.duration = 30.0;
    config.set_scenario(std::move(scn));
  }
  return config;
}

void expect_identical(const Accumulator& a, const Accumulator& b,
                      const char* what) {
  EXPECT_EQ(a.count(), b.count()) << what;
  EXPECT_EQ(a.mean(), b.mean()) << what;
  EXPECT_EQ(a.stddev(), b.stddev()) << what;
  EXPECT_EQ(a.min(), b.min()) << what;
  EXPECT_EQ(a.max(), b.max()) << what;
}

void expect_identical(const AggregateResult& a, const AggregateResult& b) {
  expect_identical(a.depth, b.depth, "depth");
  expect_identical(a.fidelity, b.fidelity, "fidelity");
  expect_identical(a.epr_wasted, b.epr_wasted, "epr_wasted");
  expect_identical(a.avg_pair_age, b.avg_pair_age, "avg_pair_age");
  expect_identical(a.avg_remote_wait, b.avg_remote_wait, "avg_remote_wait");
  expect_identical(a.entanglement_swaps, b.entanglement_swaps,
                   "entanglement_swaps");
  expect_identical(a.reroutes, b.reroutes, "reroutes");
  expect_identical(a.outage_downtime, b.outage_downtime, "outage_downtime");
}

TEST(ObserveEngine, AttachingAnObserverNeverChangesResults) {
  // The core opt-in contract: full observation (metrics + profile + trace)
  // must be invisible in every figure of merit, with and without faults.
  const Circuit qc = four_node_circuit();
  const std::vector<int> nodes = four_node_assignment();
  for (const bool faults : {false, true}) {
    const ArchConfig plain = base_config(faults);
    for (const DesignKind design : runtime::distributed_designs()) {
      SCOPED_TRACE(runtime::design_name(design) +
                   (faults ? " +faults" : " stationary"));
      ArchConfig observed = plain;
      observed.observe = make_observe();
      observed.observe->trace_seed = kSeed + 2;
      const AggregateResult a =
          runtime::run_design(qc, nodes, plain, design, kRuns, kSeed, 1);
      const AggregateResult b =
          runtime::run_design(qc, nodes, observed, design, kRuns, kSeed, 1);
      expect_identical(a, b);
      EXPECT_TRUE(observed.observe->collector.has_trace());
    }
  }
}

/// Drop the workspace/route cache hit-miss counters from a pretty-printed
/// registry snapshot. Those four counters measure per-worker work done (each
/// RunContext misses its caches once), so — like the wall-clock profile —
/// they legitimately depend on the thread count and sit outside the
/// bit-identical guarantee that covers every trial-scoped metric.
std::string trial_scoped_snapshot(const std::string& pretty) {
  std::string out;
  std::size_t pos = 0;
  while (pos < pretty.size()) {
    std::size_t eol = pretty.find('\n', pos);
    if (eol == std::string::npos) eol = pretty.size();
    const std::string line = pretty.substr(pos, eol - pos);
    if (line.find("_cache_") == std::string::npos) {
      out += line;
      out += '\n';
    }
    pos = eol + 1;
  }
  return out;
}

TEST(ObserveEngine, RegistrySnapshotIsBitIdenticalAtAnyThreadCount) {
  const Circuit qc = four_node_circuit();
  const std::vector<int> nodes = four_node_assignment();
  for (const bool faults : {false, true}) {
    const ArchConfig plain = base_config(faults);
    for (const DesignKind design : runtime::distributed_designs()) {
      ArchConfig serial_config = plain;
      serial_config.observe = make_observe();
      runtime::run_design(qc, nodes, serial_config, design, kRuns, kSeed, 1);
      const std::string baseline = trial_scoped_snapshot(
          serial_config.observe->collector.registry_json());
      EXPECT_EQ(serial_config.observe->collector.registry()
                    .counter_value("trials"),
                static_cast<std::uint64_t>(kRuns));
      for (const int threads : {0, 2, 8}) {
        SCOPED_TRACE(runtime::design_name(design) +
                     (faults ? " +faults" : " stationary") + " @ " +
                     std::to_string(threads) + " threads");
        ArchConfig config = plain;
        config.observe = make_observe();
        runtime::run_design(qc, nodes, config, design, kRuns, kSeed, threads);
        EXPECT_EQ(
            trial_scoped_snapshot(config.observe->collector.registry_json()),
            baseline);
      }
    }
  }
}

TEST(ObserveEngine, TracedTrialJsonIsBitIdenticalAtAnyThreadCount) {
  const Circuit qc = four_node_circuit();
  const std::vector<int> nodes = four_node_assignment();
  // A chain cannot detour around its middle edge, so this outage guarantees
  // an Outage span (routeless interval) and a recovery Reroute instant in
  // every trial — a ring would absorb the fault as a live detour switch.
  ArchConfig plain;
  plain.num_nodes = 4;
  plain.set_topology(net::Topology::chain(4));
  scenario::Scenario scn;
  scn.link_outages.push_back({1, 2, 5.0, 80.0});
  plain.set_scenario(std::move(scn));

  ArchConfig serial_config = plain;
  serial_config.observe = make_observe();
  serial_config.observe->trace_seed = kSeed + 3;
  runtime::run_design(qc, nodes, serial_config, DesignKind::AsyncBuf, kRuns,
                      kSeed, 1);
  const std::string baseline = serial_config.observe->collector.trace_json();
  ASSERT_FALSE(baseline.empty());
  EXPECT_NE(baseline.find("\"traceEvents\""), std::string::npos);
  // The deterministic outage on edge 1-2 shows up as an outage span and a
  // recovery reroute in the traced trial.
  EXPECT_NE(baseline.find("\"outage\""), std::string::npos);
  EXPECT_NE(baseline.find("\"reroute\""), std::string::npos);

  for (const int threads : {0, 2, 8}) {
    SCOPED_TRACE(std::to_string(threads) + " threads");
    ArchConfig config = plain;
    config.observe = make_observe();
    config.observe->trace_seed = kSeed + 3;
    runtime::run_design(qc, nodes, config, DesignKind::AsyncBuf, kRuns, kSeed,
                        threads);
    EXPECT_EQ(config.observe->collector.trace_json(), baseline);
  }
}

TEST(ObserveEngine, TraceOffLeavesCollectorWithoutTrace) {
  const Circuit qc = four_node_circuit();
  const std::vector<int> nodes = four_node_assignment();
  ArchConfig config = base_config(/*faults=*/false);
  config.observe = make_observe();  // trace_seed stays kTraceOff
  runtime::run_design(qc, nodes, config, DesignKind::AsyncBuf, kRuns, kSeed,
                      1);
  EXPECT_FALSE(config.observe->collector.has_trace());
  EXPECT_TRUE(config.observe->collector.trace_json().empty());
}

TEST(ObserveEngine, ProfileCoversTheEnginePhases) {
  const Circuit qc = four_node_circuit();
  const std::vector<int> nodes = four_node_assignment();
  ArchConfig config = base_config(/*faults=*/false);
  config.observe = make_observe();
  runtime::run_design(qc, nodes, config, DesignKind::AsyncBuf, kRuns, kSeed,
                      1);
  const Profile p = config.observe->collector.profile();
  // Every trial drives the DES and finalizes its figures of merit; the
  // workspace is rebuilt at least once (then cached across same-config
  // trials).
  EXPECT_EQ(p.calls(Phase::Drive), static_cast<std::uint64_t>(kRuns));
  EXPECT_EQ(p.calls(Phase::Finalize), static_cast<std::uint64_t>(kRuns));
  EXPECT_GE(p.calls(Phase::Setup), 1u);
}

TEST(ObserveEngine, RegistryHistogramsSeeTraffic) {
  const Circuit qc = four_node_circuit();
  const std::vector<int> nodes = four_node_assignment();
  ArchConfig config = base_config(/*faults=*/false);
  config.observe = make_observe();
  runtime::run_design(qc, nodes, config, DesignKind::AsyncBuf, kRuns, kSeed,
                      1);
  const Registry reg = config.observe->collector.registry();
  const Hist* wait = reg.histogram("remote_wait");
  ASSERT_NE(wait, nullptr);
  EXPECT_GT(wait->count(), 0u);
  EXPECT_GE(wait->quantile(0.5), wait->min());
  EXPECT_LE(wait->quantile(0.5), wait->max());
  const Hist* hops = reg.histogram("route_hops");
  ASSERT_NE(hops, nullptr);
  EXPECT_GT(hops->count(), 0u);
  // Ring-of-4 routes are at most 2 hops (detours under no faults: direct).
  EXPECT_GE(hops->min(), 1.0);
}

}  // namespace
}  // namespace dqcsim::obs
