/// Unit tests for the scheduler: remote-gate classification, segmentation,
/// ASAP/ALAP variant generation, and the adaptive policy. Includes unitary-
/// equivalence property tests of the variants via the density-matrix
/// simulator.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "gen/qaoa.hpp"
#include "qsim/density_matrix.hpp"
#include "sched/adaptive_policy.hpp"
#include "sched/remote_gates.hpp"
#include "sched/segmentation.hpp"
#include "sched/variants.hpp"

namespace dqcsim::sched {
namespace {

/// 4 qubits split 2|2; RZZ(1,2) and CX(1,2) style gates are remote.
const std::vector<int> kSplit22{0, 0, 1, 1};

Circuit mixed_circuit() {
  Circuit qc(4);
  qc.h(0);            // 0 local 1q
  qc.rzz(0, 1, 0.3);  // 1 local 2q
  qc.rzz(1, 2, 0.3);  // 2 REMOTE
  qc.rx(3, 0.2);      // 3 local 1q
  qc.rzz(2, 3, 0.3);  // 4 local 2q
  qc.rzz(0, 2, 0.3);  // 5 REMOTE
  qc.rzz(1, 3, 0.3);  // 6 REMOTE
  qc.rx(0, 0.2);      // 7
  return qc;
}

// --------------------------------------------------------- classification ----

TEST(RemoteGates, ClassifiesByPartition) {
  const Circuit qc = mixed_circuit();
  const GatePlacement placement = classify_gates(qc, kSplit22);
  EXPECT_EQ(placement.num_remote_2q, 3u);
  EXPECT_EQ(placement.num_local_2q, 2u);
  EXPECT_EQ(placement.num_1q, 3u);
  EXPECT_FALSE(placement.remote(1));
  EXPECT_TRUE(placement.remote(2));
  EXPECT_TRUE(placement.remote(5));
  EXPECT_TRUE(placement.remote(6));
}

TEST(RemoteGates, MeasurementsAreCountedSeparately) {
  Circuit qc(2);
  qc.measure(0);
  qc.measure(1);
  const GatePlacement placement = classify_gates(qc, {0, 1});
  EXPECT_EQ(placement.num_measure, 2u);
  EXPECT_EQ(placement.num_1q, 0u);
}

TEST(RemoteGates, RequiresFullAssignment) {
  const Circuit qc = mixed_circuit();
  EXPECT_THROW(classify_gates(qc, {0, 1}), PreconditionError);
}

TEST(RemoteGates, DistanceStatsFollowTheRouter) {
  // Qubits on chain nodes {0, 1, 1, 3}: one adjacent remote gate, one
  // 3-hop remote gate, one local gate.
  Circuit qc(4);
  qc.cx(0, 1);  // nodes 0-1: 1 hop
  qc.cx(0, 3);  // nodes 0-3: 3 hops
  qc.cx(1, 2);  // both on node 1: local
  qc.h(0);
  const std::vector<int> assignment{0, 1, 1, 3};
  const GatePlacement placement = classify_gates(qc, assignment);
  const net::Router router(net::Topology::chain(4));
  const RemoteDistanceStats stats =
      remote_distance_stats(qc, assignment, placement, router);
  EXPECT_EQ(stats.multihop_gates, 1u);
  EXPECT_EQ(stats.total_hops, 4u);
  EXPECT_EQ(stats.total_swaps, 2u);
  EXPECT_EQ(stats.max_hops, 3);

  // All-to-all: every remote gate is one hop, no swaps.
  const net::Router full(net::Topology::all_to_all(4));
  const RemoteDistanceStats flat =
      remote_distance_stats(qc, assignment, placement, full);
  EXPECT_EQ(flat.multihop_gates, 0u);
  EXPECT_EQ(flat.total_swaps, 0u);
  EXPECT_EQ(flat.max_hops, 1);
}

// ------------------------------------------------------------ segmentation ----

TEST(Segmentation, SplitsAtRemoteQuota) {
  const Circuit qc = mixed_circuit();
  const GatePlacement placement = classify_gates(qc, kSplit22);
  const auto segments = segment_by_remote_gates(placement, 1);
  // Remote gates at indices 2, 5, 6 -> boundaries before 5 and before 6.
  ASSERT_EQ(segments.size(), 3u);
  EXPECT_EQ(segments[0].begin, 0u);
  EXPECT_EQ(segments[0].end, 5u);
  EXPECT_EQ(segments[0].num_remote, 1u);
  EXPECT_EQ(segments[1].begin, 5u);
  EXPECT_EQ(segments[1].end, 6u);
  EXPECT_EQ(segments[2].begin, 6u);
  EXPECT_EQ(segments[2].end, 8u);
}

TEST(Segmentation, LargeQuotaGivesSingleSegment) {
  const Circuit qc = mixed_circuit();
  const GatePlacement placement = classify_gates(qc, kSplit22);
  const auto segments = segment_by_remote_gates(placement, 10);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].size(), qc.num_gates());
  EXPECT_EQ(segments[0].num_remote, 3u);
}

TEST(Segmentation, NoRemoteGatesGivesSingleSegment) {
  Circuit qc(2);
  qc.h(0);
  qc.cx(0, 1);
  const GatePlacement placement = classify_gates(qc, {0, 0});
  const auto segments = segment_by_remote_gates(placement, 1);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].num_remote, 0u);
}

class SegmentationProperty
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(SegmentationProperty, SegmentsPartitionTheCircuitExactly) {
  const auto [degree, quota] = GetParam();
  Rng rng(1000 + static_cast<std::uint64_t>(degree));
  const Circuit qc = gen::make_qaoa_regular(16, degree, rng);
  std::vector<int> assignment(16);
  for (int i = 0; i < 16; ++i) assignment[static_cast<std::size_t>(i)] = i / 8;
  const GatePlacement placement = classify_gates(qc, assignment);
  const auto segments = segment_by_remote_gates(placement, quota);

  // Coverage: contiguous, ordered, exact.
  std::size_t expected_begin = 0;
  std::size_t total_remote = 0;
  for (const Segment& s : segments) {
    EXPECT_EQ(s.begin, expected_begin);
    EXPECT_LT(s.begin, s.end);
    expected_begin = s.end;
    total_remote += s.num_remote;
    EXPECT_LE(s.num_remote, quota);
  }
  EXPECT_EQ(expected_begin, qc.num_gates());
  EXPECT_EQ(total_remote, placement.num_remote_2q);
  // All segments except possibly the last hit the quota exactly.
  for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
    EXPECT_EQ(segments[i].num_remote, quota);
  }
}

INSTANTIATE_TEST_SUITE_P(
    QuotaSweep, SegmentationProperty,
    ::testing::Combine(::testing::Values(2, 4, 6),
                       ::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{4}, std::size_t{8})));

TEST(Segmentation, DefaultSizeFollowsPaperFormula) {
  EXPECT_EQ(default_segment_size(10, 0.4), 4u);
  EXPECT_EQ(default_segment_size(20, 0.4), 8u);
  EXPECT_EQ(default_segment_size(1, 0.1), 1u);  // clamped to >= 1
  EXPECT_EQ(default_segment_size(15, 0.4), 6u);
}

TEST(Segmentation, RejectsZeroQuota) {
  const GatePlacement placement;
  EXPECT_THROW(segment_by_remote_gates(placement, 0), PreconditionError);
}

// ---------------------------------------------------------------- variants ----

TEST(Variants, OriginalPreservesProgramOrder) {
  const Circuit qc = mixed_circuit();
  const GatePlacement placement = classify_gates(qc, kSplit22);
  const Segment whole{0, qc.num_gates(), placement.num_remote_2q};
  const auto order = segment_variant_order(qc, placement, whole,
                                           SchedulingPolicy::Original);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(Variants, OrdersArePermutationsOfTheSegment) {
  const Circuit qc = mixed_circuit();
  const GatePlacement placement = classify_gates(qc, kSplit22);
  const Segment whole{0, qc.num_gates(), placement.num_remote_2q};
  for (auto policy : {SchedulingPolicy::Asap, SchedulingPolicy::Alap}) {
    const auto order = segment_variant_order(qc, placement, whole, policy);
    std::set<std::size_t> unique(order.begin(), order.end());
    EXPECT_EQ(unique.size(), qc.num_gates());
    EXPECT_EQ(*unique.begin(), 0u);
    EXPECT_EQ(*unique.rbegin(), qc.num_gates() - 1);
  }
}

/// Average position of remote gates within an order (lower = earlier).
double mean_remote_position(const std::vector<std::size_t>& order,
                            const GatePlacement& placement) {
  double sum = 0.0;
  int count = 0;
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    if (placement.remote(order[pos])) {
      sum += static_cast<double>(pos);
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / count;
}

TEST(Variants, AsapHoistsAndAlapSinksRemoteGates) {
  const Circuit qc = mixed_circuit();
  const GatePlacement placement = classify_gates(qc, kSplit22);
  const Segment whole{0, qc.num_gates(), placement.num_remote_2q};
  const auto original = segment_variant_order(qc, placement, whole,
                                              SchedulingPolicy::Original);
  const auto asap =
      segment_variant_order(qc, placement, whole, SchedulingPolicy::Asap);
  const auto alap =
      segment_variant_order(qc, placement, whole, SchedulingPolicy::Alap);
  EXPECT_LE(mean_remote_position(asap, placement),
            mean_remote_position(original, placement));
  EXPECT_GE(mean_remote_position(alap, placement),
            mean_remote_position(original, placement));
  EXPECT_LT(mean_remote_position(asap, placement),
            mean_remote_position(alap, placement));
}

/// Apply the gates of `qc` in `order` to a fresh density matrix.
qsim::DensityMatrix evaluate_in_order(const Circuit& qc,
                                      const std::vector<std::size_t>& order) {
  qsim::DensityMatrix rho(qc.num_qubits());
  // Give each qubit a distinct, non-symmetric initial rotation so ordering
  // bugs cannot hide behind state symmetries.
  for (int q = 0; q < qc.num_qubits(); ++q) {
    rho.apply_1q(qsim::gate_unitary_1q(GateKind::RY, 0.3 + 0.4 * q), q);
  }
  for (std::size_t i : order) rho.apply_gate(qc.gate(i));
  return rho;
}

TEST(Variants, ReorderedCircuitsImplementTheSameUnitary) {
  const Circuit qc = mixed_circuit();
  const GatePlacement placement = classify_gates(qc, kSplit22);
  const Segment whole{0, qc.num_gates(), placement.num_remote_2q};
  const auto original = segment_variant_order(qc, placement, whole,
                                              SchedulingPolicy::Original);
  const qsim::DensityMatrix ref = evaluate_in_order(qc, original);
  for (auto policy : {SchedulingPolicy::Asap, SchedulingPolicy::Alap}) {
    const auto order = segment_variant_order(qc, placement, whole, policy);
    const qsim::DensityMatrix got = evaluate_in_order(qc, order);
    for (std::size_t r = 0; r < ref.dim(); ++r) {
      for (std::size_t c = 0; c < ref.dim(); ++c) {
        EXPECT_NEAR(std::abs(got.element(r, c) - ref.element(r, c)), 0.0,
                    1e-10)
            << policy_name(policy);
      }
    }
  }
}

TEST(Variants, RandomQaoaSegmentsStayEquivalent) {
  // Property sweep: QAOA segments under both policies implement the
  // original unitary (RZZ commutation is heavily exercised here).
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(9000 + seed);
    const Circuit qc = gen::make_qaoa_regular(8, 4, rng);
    std::vector<int> assignment(8);
    for (int i = 0; i < 8; ++i) assignment[static_cast<std::size_t>(i)] = i / 4;
    const GatePlacement placement = classify_gates(qc, assignment);
    const auto segments = segment_by_remote_gates(placement, 2);
    const SegmentVariantTable table(qc, placement, segments);

    for (auto policy : {SchedulingPolicy::Asap, SchedulingPolicy::Alap}) {
      // Concatenate per-segment variant orders into one execution order.
      std::vector<std::size_t> order;
      for (std::size_t s = 0; s < table.num_segments(); ++s) {
        const auto& seg_order = table.order(s, policy);
        order.insert(order.end(), seg_order.begin(), seg_order.end());
      }
      const qsim::DensityMatrix ref = evaluate_in_order(
          qc, segment_variant_order(qc, placement,
                                    Segment{0, qc.num_gates(), 0},
                                    SchedulingPolicy::Original));
      const qsim::DensityMatrix got = evaluate_in_order(qc, order);
      for (std::size_t r = 0; r < ref.dim(); ++r) {
        for (std::size_t c = 0; c < ref.dim(); ++c) {
          ASSERT_NEAR(std::abs(got.element(r, c) - ref.element(r, c)), 0.0,
                      1e-9)
              << "seed " << seed << " policy " << policy_name(policy);
        }
      }
    }
  }
}

TEST(Variants, TableExposesAllPolicies) {
  const Circuit qc = mixed_circuit();
  const GatePlacement placement = classify_gates(qc, kSplit22);
  const auto segments = segment_by_remote_gates(placement, 2);
  const SegmentVariantTable table(qc, placement, segments);
  EXPECT_EQ(table.num_segments(), segments.size());
  for (std::size_t s = 0; s < table.num_segments(); ++s) {
    EXPECT_EQ(table.order(s, SchedulingPolicy::Original).size(),
              segments[s].size());
    EXPECT_EQ(table.order(s, SchedulingPolicy::Asap).size(),
              segments[s].size());
    EXPECT_EQ(table.order(s, SchedulingPolicy::Alap).size(),
              segments[s].size());
  }
  EXPECT_THROW(table.order(table.num_segments(), SchedulingPolicy::Asap),
               PreconditionError);
}

TEST(Variants, PolicyNames) {
  EXPECT_STREQ(policy_name(SchedulingPolicy::Original), "original");
  EXPECT_STREQ(policy_name(SchedulingPolicy::Asap), "asap");
  EXPECT_STREQ(policy_name(SchedulingPolicy::Alap), "alap");
}

// ----------------------------------------------------------- adaptive rule ----

TEST(AdaptivePolicy, ImplementsPaperThresholds) {
  const AdaptivePolicy policy(4);  // m = 4
  EXPECT_EQ(policy.choose(0), SchedulingPolicy::Alap);
  EXPECT_EQ(policy.choose(1), SchedulingPolicy::Original);
  EXPECT_EQ(policy.choose(4), SchedulingPolicy::Original);
  EXPECT_EQ(policy.choose(5), SchedulingPolicy::Asap);
  EXPECT_EQ(policy.choose(100), SchedulingPolicy::Asap);
}

TEST(AdaptivePolicy, RejectsZeroSegmentSize) {
  EXPECT_THROW(AdaptivePolicy(0), PreconditionError);
}

}  // namespace
}  // namespace dqcsim::sched
