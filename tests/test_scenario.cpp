/// Unit tests for the fault & drift scenario engine: ScenarioRuntime
/// schedule evaluation, Scenario/ArchConfig validation, the determinism
/// contract (same seed => bit-identical results across thread counts, with
/// drift and outages enabled), the null/no-op scenario bit-identity
/// guarantee, and end-to-end re-routing behavior under outages.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/error.hpp"
#include "gen/benchmarks.hpp"
#include "net/topology.hpp"
#include "runtime/arch_config.hpp"
#include "runtime/engine.hpp"
#include "runtime/experiment.hpp"
#include "scenario/runtime.hpp"
#include "scenario/scenario.hpp"

namespace dqcsim::scenario {
namespace {

using dqcsim::Circuit;
using runtime::AggregateResult;
using runtime::ArchConfig;
using runtime::DesignKind;
using runtime::RunResult;

// ------------------------------------------------- ScenarioRuntime units ----

TEST(ScenarioRuntime, StepDriftScalesFromEachStepTime) {
  const net::Topology topo = net::Topology::ring(4);
  Scenario scn;
  DriftTrack track;
  track.field = DriftField::PSucc;
  track.kind = DriftKind::Step;
  track.node_a = 0;
  track.node_b = 1;
  track.times = {10.0, 20.0};
  track.levels = {0.5, 0.8};
  scn.drift.push_back(track);
  scn.validate(topo);

  ScenarioRuntime rt;
  rt.begin_trial(scn, topo, 1);
  const std::size_t e01 = topo.edge_index(0, 1);
  const std::size_t e12 = topo.edge_index(1, 2);
  EXPECT_DOUBLE_EQ(rt.effective_p_succ(e01, 0.4, 5.0), 0.4);    // before first
  EXPECT_DOUBLE_EQ(rt.effective_p_succ(e01, 0.4, 10.0), 0.2);   // at step
  EXPECT_DOUBLE_EQ(rt.effective_p_succ(e01, 0.4, 15.0), 0.2);
  EXPECT_DOUBLE_EQ(rt.effective_p_succ(e01, 0.4, 25.0), 0.32);  // last level
  // Other edges are untouched by an edge-targeted track.
  EXPECT_DOUBLE_EQ(rt.effective_p_succ(e12, 0.4, 25.0), 0.4);
}

TEST(ScenarioRuntime, RampDriftInterpolatesAndHoldsOutside) {
  const net::Topology topo = net::Topology::chain(2);
  Scenario scn;
  DriftTrack track;
  track.field = DriftField::F0;
  track.kind = DriftKind::Ramp;
  track.t0 = 10.0;
  track.t1 = 20.0;
  track.s0 = 1.0;
  track.s1 = 0.5;
  scn.drift.push_back(track);  // fabric-wide (node_a = node_b = -1)
  scn.validate(topo);

  ScenarioRuntime rt;
  rt.begin_trial(scn, topo, 1);
  EXPECT_DOUBLE_EQ(rt.effective_f0(0, 0.99, 0.0), 0.99);
  EXPECT_DOUBLE_EQ(rt.effective_f0(0, 0.99, 15.0), 0.99 * 0.75);
  EXPECT_DOUBLE_EQ(rt.effective_f0(0, 0.99, 100.0), 0.99 * 0.5);
}

TEST(ScenarioRuntime, EffectiveValuesAreClampedIntoDomain) {
  const net::Topology topo = net::Topology::chain(2);
  Scenario scn;
  DriftTrack up;
  up.field = DriftField::PSucc;
  up.kind = DriftKind::Step;
  up.times = {0.0};
  up.levels = {10.0};
  DriftTrack down = up;
  down.field = DriftField::F0;
  down.levels = {0.01};
  scn.drift = {up, down};
  scn.validate(topo);

  ScenarioRuntime rt;
  rt.begin_trial(scn, topo, 1);
  EXPECT_DOUBLE_EQ(rt.effective_p_succ(0, 0.4, 1.0), 1.0);   // clamped up
  EXPECT_DOUBLE_EQ(rt.effective_f0(0, 0.99, 1.0), 0.25);     // clamped down
}

TEST(ScenarioRuntime, RandomWalkIsSeedDeterministicAndBounded) {
  const net::Topology topo = net::Topology::chain(2);
  Scenario scn;
  DriftTrack track;
  track.field = DriftField::PSucc;
  track.kind = DriftKind::RandomWalk;
  track.walk_interval = 5.0;
  track.walk_step = 0.3;
  track.walk_min = 0.5;
  track.walk_max = 1.5;
  scn.drift.push_back(track);
  scn.validate(topo);

  ScenarioRuntime a;
  ScenarioRuntime b;
  ScenarioRuntime c;
  a.begin_trial(scn, topo, 7);
  b.begin_trial(scn, topo, 7);
  c.begin_trial(scn, topo, 8);
  bool any_different_seed_diff = false;
  for (double t = 0.0; t < 200.0; t += 5.0) {
    const double pa = a.effective_p_succ(0, 0.4, t);
    EXPECT_EQ(pa, b.effective_p_succ(0, 0.4, t)) << "t=" << t;
    EXPECT_GE(pa, 0.4 * track.walk_min);
    EXPECT_LE(pa, 0.4 * track.walk_max);
    if (pa != c.effective_p_succ(0, 0.4, t)) any_different_seed_diff = true;
  }
  EXPECT_TRUE(any_different_seed_diff) << "distinct seeds produced one walk";
  // Random access in past time returns the memoized level, not a re-draw.
  EXPECT_EQ(a.effective_p_succ(0, 0.4, 0.0), b.effective_p_succ(0, 0.4, 0.0));
}

TEST(ScenarioRuntime, LinkOutageIntervalAndBoundaries) {
  const net::Topology topo = net::Topology::ring(4);
  Scenario scn;
  scn.link_outages.push_back({0, 1, 5.0, 3.0});
  scn.validate(topo);

  ScenarioRuntime rt;
  rt.begin_trial(scn, topo, 1);
  const std::size_t e01 = topo.edge_index(0, 1);
  const std::size_t e12 = topo.edge_index(1, 2);
  EXPECT_TRUE(rt.edge_up(e01, 4.9));
  EXPECT_FALSE(rt.edge_up(e01, 5.0));
  EXPECT_FALSE(rt.edge_up(e01, 7.9));
  EXPECT_TRUE(rt.edge_up(e01, 8.0));  // [start, start + duration)
  EXPECT_TRUE(rt.edge_up(e12, 6.0));

  ASSERT_TRUE(rt.next_boundary(0.0).has_value());
  EXPECT_DOUBLE_EQ(*rt.next_boundary(0.0), 5.0);
  EXPECT_DOUBLE_EQ(*rt.next_boundary(5.0), 8.0);
  EXPECT_FALSE(rt.next_boundary(8.0).has_value());
}

TEST(ScenarioRuntime, NodeOutageTakesDownAllIncidentEdges) {
  const net::Topology topo = net::Topology::ring(4);
  Scenario scn;
  scn.node_outages.push_back({0, 2.0, 4.0});
  scn.validate(topo);

  ScenarioRuntime rt;
  rt.begin_trial(scn, topo, 1);
  EXPECT_FALSE(rt.node_up(0, 3.0));
  EXPECT_TRUE(rt.node_up(1, 3.0));
  EXPECT_FALSE(rt.edge_up(topo.edge_index(0, 1), 3.0));
  EXPECT_FALSE(rt.edge_up(topo.edge_index(0, 3), 3.0));
  EXPECT_TRUE(rt.edge_up(topo.edge_index(1, 2), 3.0));
  EXPECT_TRUE(rt.edge_up(topo.edge_index(0, 1), 6.0));
}

TEST(ScenarioRuntime, RandomFailuresAreSeedDeterministicAndHonorHorizon) {
  const net::Topology topo = net::Topology::chain(3);
  Scenario scn;
  scn.random_failures.mtbf = 10.0;
  scn.random_failures.duration = 2.0;
  scn.horizon = 100.0;
  scn.validate(topo);

  ScenarioRuntime a;
  ScenarioRuntime b;
  a.begin_trial(scn, topo, 42);
  b.begin_trial(scn, topo, 42);

  // Walk the full boundary sequence on both; it must match exactly and
  // terminate (every failure starts at or before the horizon).
  std::vector<double> seq_a;
  double t = 0.0;
  while (auto next = a.next_boundary(t)) {
    seq_a.push_back(*next);
    t = *next;
    ASSERT_LT(seq_a.size(), 1000u) << "boundary sequence did not terminate";
  }
  EXPECT_FALSE(seq_a.empty());
  EXPECT_LE(seq_a.back(), scn.horizon + scn.random_failures.duration);

  t = 0.0;
  for (const double expected : seq_a) {
    const auto next = b.next_boundary(t);
    ASSERT_TRUE(next.has_value());
    EXPECT_EQ(*next, expected);
    // Availability flips are consistent with the boundary sequence.
    t = *next;
  }
  EXPECT_FALSE(b.next_boundary(t).has_value());
}

TEST(ScenarioRuntime, CalibrationSnapshotScalesIncidentEdgesOnly) {
  const net::Topology topo = net::Topology::ring(4);
  Scenario scn;
  scn.snapshots.push_back({1, 10.0, 0.5, 0.9});
  scn.validate(topo);

  ScenarioRuntime rt;
  rt.begin_trial(scn, topo, 1);
  const std::size_t e01 = topo.edge_index(0, 1);
  const std::size_t e12 = topo.edge_index(1, 2);
  const std::size_t e23 = topo.edge_index(2, 3);
  EXPECT_DOUBLE_EQ(rt.effective_p_succ(e01, 0.4, 5.0), 0.4);  // not yet
  EXPECT_DOUBLE_EQ(rt.effective_p_succ(e01, 0.4, 10.0), 0.2);
  EXPECT_DOUBLE_EQ(rt.effective_p_succ(e12, 0.4, 12.0), 0.2);
  EXPECT_DOUBLE_EQ(rt.effective_p_succ(e23, 0.4, 12.0), 0.4);  // not incident
  EXPECT_DOUBLE_EQ(rt.effective_f0(e01, 0.99, 12.0), 0.99 * 0.9);
}

TEST(ScenarioRuntime, BurstDownsExplicitEdgesTogether) {
  const net::Topology topo = net::Topology::ring(4);
  Scenario scn;
  FailureBurst burst;
  burst.start = 3.0;
  burst.duration = 2.0;
  burst.edges = {{0, 1}, {2, 3}};
  scn.bursts.push_back(burst);
  scn.validate(topo);

  ScenarioRuntime rt;
  rt.begin_trial(scn, topo, 1);
  EXPECT_FALSE(rt.edge_up(topo.edge_index(0, 1), 4.0));
  EXPECT_FALSE(rt.edge_up(topo.edge_index(2, 3), 4.0));
  EXPECT_TRUE(rt.edge_up(topo.edge_index(1, 2), 4.0));
  EXPECT_TRUE(rt.edge_up(topo.edge_index(0, 1), 5.0));
}

// ------------------------------------------------------------ validation ----

TEST(ScenarioValidation, RejectsOutOfDomainSpecs) {
  const net::Topology topo = net::Topology::ring(4);

  {
    Scenario scn;  // outage must recover
    scn.link_outages.push_back({0, 1, 5.0, 0.0});
    EXPECT_THROW(scn.validate(topo), ConfigError);
  }
  {
    Scenario scn;  // edge absent from the topology
    scn.link_outages.push_back({0, 2, 5.0, 1.0});
    EXPECT_THROW(scn.validate(topo), ConfigError);
  }
  {
    Scenario scn;  // node out of range
    scn.node_outages.push_back({7, 5.0, 1.0});
    EXPECT_THROW(scn.validate(topo), ConfigError);
  }
  {
    Scenario scn;  // mismatched step times/levels
    DriftTrack track;
    track.kind = DriftKind::Step;
    track.times = {1.0, 2.0};
    track.levels = {0.5};
    scn.drift.push_back(track);
    EXPECT_THROW(scn.validate(topo), ConfigError);
  }
  {
    Scenario scn;  // non-increasing step times
    DriftTrack track;
    track.kind = DriftKind::Step;
    track.times = {2.0, 2.0};
    track.levels = {0.5, 0.6};
    scn.drift.push_back(track);
    EXPECT_THROW(scn.validate(topo), ConfigError);
  }
  {
    Scenario scn;  // ramp with t1 <= t0
    DriftTrack track;
    track.kind = DriftKind::Ramp;
    track.t0 = 5.0;
    track.t1 = 5.0;
    scn.drift.push_back(track);
    EXPECT_THROW(scn.validate(topo), ConfigError);
  }
  {
    Scenario scn;  // walk without an interval
    DriftTrack track;
    track.kind = DriftKind::RandomWalk;
    track.walk_interval = 0.0;
    track.walk_step = 0.1;
    scn.drift.push_back(track);
    EXPECT_THROW(scn.validate(topo), ConfigError);
  }
  {
    Scenario scn;  // burst with neither explicit nor random edges
    FailureBurst burst;
    burst.start = 1.0;
    burst.duration = 1.0;
    scn.bursts.push_back(burst);
    EXPECT_THROW(scn.validate(topo), ConfigError);
  }
  {
    Scenario scn;  // more random edges than the topology has
    FailureBurst burst;
    burst.start = 1.0;
    burst.duration = 1.0;
    burst.random_edges = 99;
    scn.bursts.push_back(burst);
    EXPECT_THROW(scn.validate(topo), ConfigError);
  }
}

TEST(ScenarioValidation, ArchConfigRequiresTopologyForScenario) {
  ArchConfig config;
  config.num_nodes = 4;
  Scenario scn;
  scn.link_outages.push_back({0, 1, 5.0, 1.0});
  config.set_scenario(scn);
  EXPECT_THROW(config.validate(), ConfigError);  // no topology set

  config.set_topology(net::Topology::all_to_all(4));
  EXPECT_NO_THROW(config.validate());

  // Validation runs against the configured topology.
  config.set_topology(net::Topology::chain(4));
  Scenario bad;
  bad.link_outages.push_back({0, 3, 5.0, 1.0});  // not a chain edge
  config.set_scenario(bad);
  EXPECT_THROW(config.validate(), ConfigError);
}

// ----------------------------------------------------------- determinism ----

/// 8 qubits over 4 nodes with remote traffic on four node pairs.
Circuit four_node_circuit() {
  Circuit qc(8);
  for (int rep = 0; rep < 3; ++rep) {
    qc.rzz(1, 2, 0.1);  // nodes 0-1
    qc.rzz(3, 4, 0.1);  // nodes 1-2
    qc.rzz(5, 6, 0.1);  // nodes 2-3
    qc.rzz(7, 0, 0.1);  // nodes 3-0
    qc.rzz(0, 1, 0.1);  // local on node 0
    qc.h(2);
  }
  return qc;
}

std::vector<int> four_node_assignment() { return {0, 0, 1, 1, 2, 2, 3, 3}; }

/// A scenario exercising every component class at once.
Scenario rich_scenario() {
  Scenario scn;
  DriftTrack step;
  step.field = DriftField::PSucc;
  step.kind = DriftKind::Step;
  step.node_a = 0;
  step.node_b = 1;
  step.times = {40.0, 120.0};
  step.levels = {0.7, 0.9};
  scn.drift.push_back(step);

  DriftTrack ramp;
  ramp.field = DriftField::F0;
  ramp.kind = DriftKind::Ramp;
  ramp.t0 = 0.0;
  ramp.t1 = 300.0;
  ramp.s0 = 1.0;
  ramp.s1 = 0.97;
  scn.drift.push_back(ramp);

  DriftTrack walk;
  walk.field = DriftField::PSucc;
  walk.kind = DriftKind::RandomWalk;
  walk.walk_interval = 25.0;
  walk.walk_step = 0.15;
  scn.drift.push_back(walk);

  scn.link_outages.push_back({1, 2, 60.0, 40.0});
  scn.node_outages.push_back({3, 150.0, 30.0});

  FailureBurst burst;
  burst.start = 220.0;
  burst.duration = 25.0;
  burst.random_edges = 2;
  scn.bursts.push_back(burst);

  scn.random_failures.mtbf = 500.0;
  scn.random_failures.duration = 35.0;
  scn.snapshots.push_back({2, 90.0, 0.8, 0.99});
  return scn;
}

void expect_identical(const Accumulator& a, const Accumulator& b,
                      const char* what) {
  EXPECT_EQ(a.count(), b.count()) << what;
  EXPECT_EQ(a.mean(), b.mean()) << what;
  EXPECT_EQ(a.stddev(), b.stddev()) << what;
  EXPECT_EQ(a.min(), b.min()) << what;
  EXPECT_EQ(a.max(), b.max()) << what;
}

void expect_identical(const AggregateResult& a, const AggregateResult& b) {
  expect_identical(a.depth, b.depth, "depth");
  expect_identical(a.fidelity, b.fidelity, "fidelity");
  expect_identical(a.epr_wasted, b.epr_wasted, "epr_wasted");
  expect_identical(a.epr_expired, b.epr_expired, "epr_expired");
  expect_identical(a.avg_pair_age, b.avg_pair_age, "avg_pair_age");
  expect_identical(a.avg_remote_wait, b.avg_remote_wait, "avg_remote_wait");
  expect_identical(a.entanglement_swaps, b.entanglement_swaps,
                   "entanglement_swaps");
  expect_identical(a.avg_route_hops, b.avg_route_hops, "avg_route_hops");
  expect_identical(a.reroutes, b.reroutes, "reroutes");
  expect_identical(a.outage_downtime, b.outage_downtime, "outage_downtime");
}

TEST(ScenarioDeterminism, ParallelRunsAreBitIdenticalToSerialForEveryDesign) {
  const Circuit qc = four_node_circuit();
  const std::vector<int> nodes = four_node_assignment();
  ArchConfig config;
  config.num_nodes = 4;
  config.set_topology(net::Topology::ring(4));
  config.set_scenario(rich_scenario());
  constexpr int kRuns = 8;
  constexpr std::uint64_t kSeed = 1000;

  for (const DesignKind design : runtime::distributed_designs()) {
    const AggregateResult serial = runtime::run_design(
        qc, nodes, config, design, kRuns, kSeed, /*threads=*/1);
    for (const int threads : {0, 2, 4}) {
      SCOPED_TRACE(runtime::design_name(design) + " @ " +
                   std::to_string(threads) + " threads");
      const AggregateResult parallel = runtime::run_design(
          qc, nodes, config, design, kRuns, kSeed, threads);
      expect_identical(serial, parallel);
    }
  }
}

TEST(ScenarioDeterminism, NoOpScenarioIsBitIdenticalToNullScenario) {
  // A scenario whose tracks scale by exactly 1.0 exercises the full
  // effective-parameter pipeline (provider calls, composed-route folds) and
  // must still be bit-identical to the stationary engine: base * 1.0 == base
  // and the provider's fidelity fold mirrors net::compose_route exactly.
  const Circuit qc = four_node_circuit();
  const std::vector<int> nodes = four_node_assignment();
  ArchConfig null_config;
  null_config.num_nodes = 4;
  null_config.set_topology(net::Topology::ring(4));

  ArchConfig noop_config = null_config;
  Scenario noop;
  DriftTrack step;
  step.field = DriftField::PSucc;
  step.kind = DriftKind::Step;
  step.times = {0.0};
  step.levels = {1.0};
  noop.drift.push_back(step);
  DriftTrack ramp;
  ramp.field = DriftField::F0;
  ramp.kind = DriftKind::Ramp;
  ramp.t0 = 0.0;
  ramp.t1 = 100.0;
  ramp.s0 = 1.0;
  ramp.s1 = 1.0;
  noop.drift.push_back(ramp);
  noop_config.set_scenario(noop);

  for (const DesignKind design : runtime::distributed_designs()) {
    SCOPED_TRACE(runtime::design_name(design));
    const AggregateResult a =
        runtime::run_design(qc, nodes, null_config, design, 6, 500, 1);
    const AggregateResult b =
        runtime::run_design(qc, nodes, noop_config, design, 6, 500, 1);
    expect_identical(a, b);
    EXPECT_EQ(b.reroutes.mean(), 0.0);
    EXPECT_EQ(b.outage_downtime.mean(), 0.0);
  }
}

TEST(ScenarioDeterminism, EmptyScenarioShortCircuitsToStationary) {
  const Circuit qc = four_node_circuit();
  const std::vector<int> nodes = four_node_assignment();
  ArchConfig null_config;
  null_config.num_nodes = 4;
  null_config.set_topology(net::Topology::ring(4));
  ArchConfig empty_config = null_config;
  empty_config.set_scenario(Scenario{});  // empty() == true

  const AggregateResult a = runtime::run_design(
      qc, nodes, null_config, DesignKind::AsyncBuf, 6, 500, 1);
  const AggregateResult b = runtime::run_design(
      qc, nodes, empty_config, DesignKind::AsyncBuf, 6, 500, 1);
  expect_identical(a, b);
}

// --------------------------------------------------------- fault behavior ----

RunResult run_once(const Circuit& qc, const std::vector<int>& nodes,
                   const ArchConfig& config, DesignKind design,
                   std::uint64_t seed = 1) {
  runtime::ExecutionEngine engine(qc, nodes, config, design, seed);
  return engine.run();
}

TEST(ScenarioFaults, RingOutageReroutesOverSurvivingPath) {
  // Ring(4) with edge {0, 1} down from early on: the 0-1 logical link must
  // switch to the 3-hop detour 0-3-2-1 while live, paying entanglement
  // swaps it would never pay on the direct edge.
  const Circuit qc = four_node_circuit();
  const std::vector<int> nodes = four_node_assignment();
  ArchConfig base;
  base.num_nodes = 4;
  base.set_topology(net::Topology::ring(4));

  ArchConfig faulty = base;
  Scenario scn;
  scn.link_outages.push_back({0, 1, 1.0, 1e6});
  faulty.set_scenario(scn);

  const RunResult healthy = run_once(qc, nodes, base, DesignKind::AsyncBuf);
  const RunResult outage = run_once(qc, nodes, faulty, DesignKind::AsyncBuf);

  EXPECT_EQ(healthy.reroutes, 0u);
  EXPECT_GE(outage.reroutes, 1u);
  // The live switch means the link is never routeless: no outage event, no
  // downtime — the detour absorbs the fault.
  EXPECT_EQ(outage.outage_events, 0u);
  EXPECT_DOUBLE_EQ(outage.outage_downtime, 0.0);
  EXPECT_GT(outage.entanglement_swaps, healthy.entanglement_swaps);
  EXPECT_LT(outage.fidelity, healthy.fidelity);
}

TEST(ScenarioFaults, ChainOutageRecoversAndAccruesDowntime) {
  // A chain has a unique path: an outage on a middle edge cannot detour, so
  // the link goes down, traffic stalls, and the recovery at start+duration
  // counts as a reroute with the downtime accrued.
  const Circuit qc = four_node_circuit();
  const std::vector<int> nodes = four_node_assignment();
  ArchConfig config;
  config.num_nodes = 4;
  config.set_topology(net::Topology::chain(4));
  Scenario scn;
  scn.link_outages.push_back({1, 2, 5.0, 80.0});
  config.set_scenario(scn);

  const RunResult result = run_once(qc, nodes, config, DesignKind::AsyncBuf);
  EXPECT_GE(result.reroutes, 1u);
  EXPECT_GE(result.outage_events, 1u);
  EXPECT_GT(result.outage_downtime, 0.0);
}

TEST(ScenarioFaults, ChainAt8WithRandomOutagesReportsReroutes) {
  // Acceptance scenario: QAOA on an 8-node chain under stochastic link
  // failures reports a positive mean reroute count across runs.
  const Circuit qc = gen::make_benchmark(gen::BenchmarkId::QAOA_R8_32);
  const net::Topology topo = net::Topology::chain(8);
  const auto part = runtime::partition_circuit(qc, topo);
  ArchConfig config;
  config.num_nodes = 8;
  config.set_topology(topo);
  Scenario scn;
  scn.random_failures.mtbf = 400.0;
  scn.random_failures.duration = 60.0;
  config.set_scenario(scn);

  const AggregateResult agg = runtime::run_design(
      qc, part.assignment, config, DesignKind::AsyncBuf, 6, 1000, 0);
  EXPECT_GT(agg.reroutes.mean(), 0.0);
  EXPECT_GT(agg.outage_downtime.mean(), 0.0);
  EXPECT_GT(agg.depth.count(), 0u);
}

TEST(ScenarioFaults, TotalDisconnectionTerminatesUnderTheTrialBudget) {
  // Every node except one goes down at t=0 and never recovers: no route
  // survives and no remote gate can ever complete. The trial sim-time
  // budget turns the would-be infinite run into a clean truncated result
  // with the full downtime on the books — and the truncated trials stay
  // bit-identical across thread counts.
  const Circuit qc = four_node_circuit();
  const std::vector<int> nodes = four_node_assignment();
  ArchConfig config;
  config.num_nodes = 4;
  config.set_topology(net::Topology::ring(4));
  Scenario scn;
  scn.node_outages.push_back({1, 0.0, 1e9});
  scn.node_outages.push_back({3, 0.0, 1e9});  // isolates every node pair
  config.set_scenario(scn);
  config.max_trial_sim_time = 400.0;

  const RunResult r = run_once(qc, nodes, config, DesignKind::AsyncBuf);
  EXPECT_TRUE(r.truncated);
  EXPECT_DOUBLE_EQ(r.depth, 400.0);
  EXPECT_GT(r.outage_downtime, 0.0);
  EXPECT_GE(r.outage_events, 1u);

  const AggregateResult serial = runtime::run_design(
      qc, nodes, config, DesignKind::AsyncBuf, 6, 800, /*threads=*/1);
  EXPECT_EQ(serial.truncated.mean(), 1.0);
  for (const int threads : {0, 2, 4}) {
    SCOPED_TRACE(std::to_string(threads) + " threads");
    const AggregateResult parallel = runtime::run_design(
        qc, nodes, config, DesignKind::AsyncBuf, 6, 800, threads);
    expect_identical(serial, parallel);
    expect_identical(serial.truncated, parallel.truncated, "truncated");
  }
}

TEST(ScenarioFaults, DriftOnlyScenarioDegradesFidelityWithoutReroutes) {
  // Quality drift perturbs pair statistics but never invalidates a route.
  const Circuit qc = four_node_circuit();
  const std::vector<int> nodes = four_node_assignment();
  ArchConfig base;
  base.num_nodes = 4;
  base.set_topology(net::Topology::ring(4));

  ArchConfig drifty = base;
  Scenario scn;
  DriftTrack track;
  track.field = DriftField::F0;
  track.kind = DriftKind::Step;
  track.times = {0.0};
  track.levels = {0.96};
  scn.drift.push_back(track);
  drifty.set_scenario(scn);

  const AggregateResult a =
      runtime::run_design(qc, nodes, base, DesignKind::AsyncBuf, 6, 300, 1);
  const AggregateResult b =
      runtime::run_design(qc, nodes, drifty, DesignKind::AsyncBuf, 6, 300, 1);
  EXPECT_LT(b.fidelity.mean(), a.fidelity.mean());
  EXPECT_EQ(b.reroutes.mean(), 0.0);
  EXPECT_EQ(b.outage_downtime.mean(), 0.0);
}

}  // namespace
}  // namespace dqcsim::scenario
