#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file produced by obs::TraceSink.

Checks:
  - the file parses as JSON and has a non-empty "traceEvents" array;
  - every non-metadata event carries name/cat/ph/ts/pid/tid;
  - timestamps are monotone non-decreasing per track (tid);
  - async span begin/end records pair up: every "e" closes an open "b"
    with the same (cat, id), and no span is left open;
  - instants use the documented scope ("s": "t").

Usage:
  python3 ci/check_trace.py trace.json [--require outage --require reroute]

--require NAME asserts that at least one event with that name is present
(e.g. "outage", "reroute" for a fault-scenario trace).
"""

import argparse
import collections
import json
import sys


def validate(doc, required):
    errors = []
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return ['"traceEvents" missing or empty']

    last_ts = {}
    open_spans = collections.Counter()
    names = set()
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph == "M":  # metadata (process/thread names): no timestamp rules
            continue
        missing = [f for f in ("name", "cat", "ph", "ts", "pid", "tid")
                   if f not in ev]
        if missing:
            errors.append(f"event {i}: missing fields {missing}")
            continue
        tid, ts = ev["tid"], ev["ts"]
        if tid in last_ts and ts < last_ts[tid]:
            errors.append(
                f"event {i}: ts {ts} < previous {last_ts[tid]} on tid {tid}")
        last_ts[tid] = ts
        names.add(ev["name"])
        if ph == "b":
            if "id" not in ev:
                errors.append(f'event {i}: span "b" without id')
            open_spans[(ev["cat"], ev.get("id"))] += 1
        elif ph == "e":
            key = (ev["cat"], ev.get("id"))
            if open_spans[key] <= 0:
                errors.append(f'event {i}: "e" without an open "b" for {key}')
            else:
                open_spans[key] -= 1
        elif ph == "i":
            if ev.get("s") != "t":
                errors.append(f'event {i}: instant scope {ev.get("s")!r}, '
                              'expected "t"')
        else:
            errors.append(f"event {i}: unexpected ph {ph!r}")

    for key, count in sorted(open_spans.items()):
        if count:
            errors.append(f"{count} unterminated span(s) for {key}")
    for name in required:
        if name not in names:
            errors.append(f'required event "{name}" absent from the trace')
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="trace-event JSON file to validate")
    parser.add_argument("--require", action="append", default=[],
                        metavar="NAME",
                        help="event name that must appear at least once")
    args = parser.parse_args()

    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"FAIL: {args.trace}: {exc}")
        return 1

    errors = validate(doc, args.require)
    events = doc.get("traceEvents") or []
    payload = sum(1 for ev in events if ev.get("ph") != "M")
    if errors:
        for err in errors[:25]:
            print(f"FAIL: {err}")
        if len(errors) > 25:
            print(f"... and {len(errors) - 25} more")
        return 1
    dropped = doc.get("dropped_events", 0)
    print(f"OK: {args.trace}: {payload} events on {len(set(ev.get('tid') for ev in events))} "
          f"tracks, {dropped} dropped; monotone per-track timestamps, "
          "all spans paired")
    return 0


if __name__ == "__main__":
    sys.exit(main())
