#!/usr/bin/env python3
"""Gate CI on benchmark regressions.

Compares a freshly produced BENCH_*.json report (see bench/bench_report.hpp
for the schema) against the committed baseline. A kernel regresses when its
ns_per_op exceeds baseline * threshold. Only kernels present in the baseline
are tracked, so adding new benchmarks never breaks the gate; a tracked
kernel that disappears from the current report fails it (a silently dropped
benchmark is itself a regression).

Named counters recorded in the baseline (e.g. the allocs_per_op counter of
the steady-state DES/RunContext benches) are gated too: a counter fails when
it exceeds baseline * threshold + 0.01 (the absolute slack lets a zero
baseline tolerate measurement jitter but not a real allocation sneaking back
into the hot path).

Usage:
    check_bench_regression.py CURRENT.json [MORE.json ...] BASELINE.json
                              [--threshold 1.25]

Multiple current reports are merged before comparison, so one baseline file
can gate perf_micro micro-kernels and the smoke-run sweep sections of other
benches together. A baseline kernel may carry a "gate_threshold" field to
widen (or tighten) its own gate relative to --threshold.

Refreshing the baseline: download the bench-reports artifact from a trusted
run on main and commit it as ci/bench_baseline.json (see README).
"""

import argparse
import json
import sys


def load_kernels(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or doc.get("schema_version") != 1:
        sys.exit(f"{path}: unsupported schema_version "
                 f"{doc.get('schema_version') if isinstance(doc, dict) else doc!r}")
    kernels = doc.get("kernels")
    if not isinstance(kernels, list):
        sys.exit(f"{path}: 'kernels' is not a list")
    out = {}
    for i, k in enumerate(kernels):
        if not isinstance(k, dict) or not isinstance(k.get("name"), str):
            sys.exit(f"{path}: kernels[{i}] has no usable 'name' field")
        out[k["name"]] = k
    return out


def as_number(value):
    """`value` as a float, or None for null / missing / non-numeric fields.

    A partially written or truncated report may carry nulls where numbers
    belong; those must become named failures, never tracebacks.
    """
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    return None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "current",
        nargs="+",
        help="one or more BENCH_*.json reports; kernels are merged",
    )
    parser.add_argument("baseline")
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.25,
        help="fail when current ns_per_op > baseline * threshold; a kernel"
        " may widen its own gate with a gate_threshold baseline field"
        " (wall-clock sweep sections are noisier than micro-kernels)",
    )
    args = parser.parse_args()

    current = {}
    for path in args.current:
        current.update(load_kernels(path))
    baseline = load_kernels(args.baseline)

    failures = []
    rows = []
    for name, base in sorted(baseline.items()):
        base_ns = as_number(base.get("ns_per_op"))
        threshold = args.threshold
        if "gate_threshold" in base:
            threshold = as_number(base.get("gate_threshold"))
            if threshold is None or threshold <= 0.0:
                failures.append(
                    f"{name}: gate_threshold is not a positive number in baseline"
                )
                rows.append((name, base_ns, None, None, "BAD BASELINE"))
                continue
        cur = current.get(name)
        if cur is None:
            failures.append(f"{name}: tracked kernel missing from current report")
            rows.append((name, base_ns, None, None, "MISSING"))
            continue
        cur_ns = as_number(cur.get("ns_per_op"))
        if cur_ns is None:
            failures.append(
                f"{name}: ns_per_op missing or null in current report"
            )
            rows.append((name, base_ns, None, None, "BAD CURRENT"))
            continue
        if base_ns is None:
            failures.append(
                f"{name}: ns_per_op missing or null in baseline"
            )
            rows.append((name, None, cur_ns, None, "BAD BASELINE"))
            continue
        if base_ns <= 0.0:
            ratio = None
            verdict = "SKIP (no baseline time)"
        else:
            ratio = cur_ns / base_ns
            verdict = "ok"
            if ratio > threshold:
                verdict = f"REGRESSION (> {threshold:.2f}x)"
                failures.append(
                    f"{name}: {base_ns:.1f} -> {cur_ns:.1f} ns/op ({ratio:.2f}x)"
                )
        base_counters = base.get("counters")
        if base_counters is None:
            base_counters = {}
        if not isinstance(base_counters, dict):
            failures.append(f"{name}: counters is not an object in baseline")
            rows.append((name, base_ns, cur_ns, ratio, "BAD BASELINE"))
            continue
        cur_counters = cur.get("counters")
        if not isinstance(cur_counters, dict):
            cur_counters = {}
        for counter, base_raw in base_counters.items():
            base_val = as_number(base_raw)
            if base_val is None:
                failures.append(
                    f"{name}: counter {counter} missing or null in baseline"
                )
                verdict = "BAD BASELINE"
                continue
            cur_val = as_number(cur_counters.get(counter))
            if cur_val is None:
                failures.append(
                    f"{name}: counter {counter} missing or null in current report"
                )
                verdict = "COUNTER MISSING"
                continue
            limit = base_val * threshold + 0.01
            if cur_val > limit:
                failures.append(
                    f"{name}: counter {counter} {base_val:.3g} -> {cur_val:.3g}"
                    f" (limit {limit:.3g})"
                )
                verdict = f"COUNTER REGRESSION ({counter})"
        rows.append((name, base_ns, cur_ns, ratio, verdict))

    width = max((len(r[0]) for r in rows), default=10)
    print(f"{'kernel':<{width}}  {'baseline':>12}  {'current':>12}  {'ratio':>6}  verdict")
    for name, base_ns, cur_ns, ratio, verdict in rows:
        base_s = f"{base_ns:12.1f}" if base_ns is not None else f"{'-':>12}"
        cur_s = f"{cur_ns:12.1f}" if cur_ns is not None else f"{'-':>12}"
        ratio_s = f"{ratio:6.2f}" if ratio is not None else f"{'-':>6}"
        print(f"{name:<{width}}  {base_s}  {cur_s}  {ratio_s}  {verdict}")

    untracked = sorted(set(current) - set(baseline))
    if untracked:
        print(f"\nuntracked kernels (not gated): {', '.join(untracked)}")

    if failures:
        print(f"\n{len(failures)} benchmark regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)
    print(f"\nall {sum(1 for r in rows if r[4] == 'ok')} tracked kernels within "
          f"{args.threshold:.2f}x of baseline")


if __name__ == "__main__":
    main()
