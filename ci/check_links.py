#!/usr/bin/env python3
"""Fail on dead intra-repo markdown links.

Usage: check_links.py FILE_OR_DIR [FILE_OR_DIR ...]

Scans the given markdown files (directories are walked for *.md) for inline
links and images, `[text](target)`, and verifies every relative target:

  - the referenced path must exist (resolved against the linking file's
    directory, queried case-sensitively even on case-insensitive
    filesystems so CI and macOS agree with Linux);
  - a `#fragment` on a markdown target must match a heading in the
    referenced file, using GitHub's anchor slug rules (lowercase, spaces
    to dashes, punctuation stripped, duplicate slugs numbered);
  - a bare `#fragment` is checked against the linking file itself.

External schemes (http:, https:, mailto:) are ignored — availability of
the outside world is not a property of this repository. Links inside
fenced code blocks and inline code spans are ignored too.

Exit status: 0 when every link resolves, 1 otherwise (each dead link is
reported as file:line).
"""

from __future__ import annotations

import os
import re
import sys

INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^()\s]+(?:\([^()]*\))?[^()\s]*)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$")
FENCE = re.compile(r"^(```|~~~)")
CODE_SPAN = re.compile(r"`[^`]*`")
EXTERNAL = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def gather_files(args: list[str]) -> list[str]:
    files: list[str] = []
    for arg in args:
        if os.path.isdir(arg):
            for root, _dirs, names in os.walk(arg):
                files.extend(
                    os.path.join(root, n)
                    for n in sorted(names)
                    if n.endswith(".md")
                )
        else:
            files.append(arg)
    return files


def github_slug(heading: str, seen: dict[str, int]) -> str:
    """GitHub's heading-to-anchor rule, including duplicate numbering."""
    text = CODE_SPAN.sub(lambda m: m.group(0).strip("`"), heading)
    text = re.sub(r"[!\[\]]|\(([^()]*)\)", r"\1", text)  # strip md links
    slug = text.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug, flags=re.UNICODE)
    slug = slug.replace(" ", "-")
    n = seen.get(slug, 0)
    seen[slug] = n + 1
    return slug if n == 0 else f"{slug}-{n}"


def anchors_of(path: str, cache: dict[str, set[str]]) -> set[str]:
    if path not in cache:
        slugs: set[str] = set()
        seen: dict[str, int] = {}
        in_fence = False
        with open(path, encoding="utf-8") as f:
            for line in f:
                if FENCE.match(line):
                    in_fence = not in_fence
                    continue
                if in_fence:
                    continue
                m = HEADING.match(line)
                if m:
                    slugs.add(github_slug(m.group(1), seen))
        cache[path] = slugs
    return cache[path]


def path_exists_case_sensitive(path: str) -> bool:
    """os.path.exists with each component checked against its directory
    listing, so a mis-cased link fails here like it does on Linux."""
    path = os.path.normpath(path)
    parts = path.split(os.sep)
    cur = parts[0] + os.sep if path.startswith(os.sep) else "."
    for part in parts if not path.startswith(os.sep) else parts[1:]:
        if part in ("", "."):
            continue
        if part == ".." :
            cur = os.path.normpath(os.path.join(cur, part))
            continue
        if not os.path.isdir(cur) or part not in os.listdir(cur):
            return False
        cur = os.path.join(cur, part)
    return True


def check_file(path: str, anchor_cache: dict[str, set[str]]) -> list[str]:
    errors: list[str] = []
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if FENCE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for target in INLINE_LINK.findall(CODE_SPAN.sub("``", line)):
                target = target.strip()
                if EXTERNAL.match(target) or target.startswith("//"):
                    continue
                ref, _, fragment = target.partition("#")
                if ref:
                    dest = os.path.normpath(
                        os.path.join(os.path.dirname(path) or ".", ref)
                    )
                else:
                    dest = path  # bare #fragment: this file
                if not path_exists_case_sensitive(dest):
                    errors.append(f"{path}:{lineno}: dead link: {target}")
                    continue
                if fragment and dest.endswith(".md"):
                    if fragment.lower() not in anchors_of(dest, anchor_cache):
                        errors.append(
                            f"{path}:{lineno}: dead anchor: {target}"
                        )
    return errors


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    files = gather_files(argv[1:])
    anchor_cache: dict[str, set[str]] = {}
    errors: list[str] = []
    for path in files:
        errors.extend(check_file(path, anchor_cache))
    for err in errors:
        print(err, file=sys.stderr)
    print(
        f"checked {len(files)} markdown file(s): "
        + (f"{len(errors)} dead link(s)" if errors else "all links resolve")
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
