#!/usr/bin/env bash
# One-shot static-analysis driver: dqcsim-lint + its self-tests + clang-tidy.
#
#   ci/lint.sh [build-dir]
#
# Runs, in order:
#   1. tools/lint_selftest.py        — the linter's own fixture suite
#   2. tools/dqcsim_lint.py          — zero-findings gate over src/bench/tests
#   3. clang-tidy over src/*.cpp     — driven by compile_commands.json from
#      the given build dir (configured on demand when absent). Skipped with
#      a notice when no clang-tidy binary is installed (the dev container
#      ships none; the static-analysis CI job installs it), matching how the
#      format job treats the absent clang-format binary.
#
# Exits non-zero on the first failing stage.

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
cd "$repo_root"

echo "== dqcsim-lint self-tests =="
python3 tools/lint_selftest.py

echo "== dqcsim-lint (src bench tests) =="
python3 tools/dqcsim_lint.py src bench tests

echo "== clang-tidy =="
if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "clang-tidy not installed; skipping (the static-analysis CI job runs it)"
    exit 0
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
    echo "no compile_commands.json in $build_dir; configuring (configure-only)"
    cmake -B "$build_dir" -S "$repo_root" >/dev/null
fi

# Library sources only: tests expand gtest macros (third-party noise) and
# bench mains are measurement scaffolding; both stay covered by dqcsim-lint.
# Headers are analyzed through their including .cpp via HeaderFilterRegex.
mapfile -t sources < <(git ls-files 'src/*.cpp')
echo "analyzing ${#sources[@]} translation units against .clang-tidy"
clang-tidy -p "$build_dir" --quiet "${sources[@]}"
echo "clang-tidy: zero findings"
